(* The electrical state of a sized circuit: per-node load and output slew,
   and the nominal delay of every fanin->output arc, all straight from the
   library LUTs.

   Slew propagation uses the worst (largest) fanin slew, the usual
   conservative choice that keeps the electrical pass independent of
   arrival times. Both timing engines (deterministic and statistical) and
   the Monte-Carlo sampler consume these arc delays, so they always agree
   on the nominal electrical picture. *)

type config = { input_slew : float; input_arrival : float }

let default_config = { input_slew = 10.0; input_arrival = 0.0 }

type t = {
  config : config;
  load : float array;
  slew : float array;
  arc_delay : float array array; (* arc_delay.(gate).(k) for fanin k *)
}

let compute ?(config = default_config) circuit =
  let n = Netlist.Circuit.size circuit in
  let load = Array.make n 0.0 in
  let slew = Array.make n config.input_slew in
  let arc_delay = Array.make n [||] in
  List.iter
    (fun id ->
      load.(id) <- Netlist.Circuit.load circuit id;
      match Netlist.Circuit.cell circuit id with
      | None -> () (* primary input: slew stays at the boundary value *)
      | Some cell ->
          let fanins = Netlist.Circuit.fanins circuit id in
          let worst_in_slew =
            Array.fold_left (fun acc fi -> Float.max acc slew.(fi)) 0.0 fanins
          in
          arc_delay.(id) <-
            Array.map
              (fun fi -> Cells.Cell.delay cell ~slew:slew.(fi) ~load:load.(id))
              fanins;
          slew.(id) <- Cells.Cell.slew cell ~slew:worst_in_slew ~load:load.(id))
    (Netlist.Circuit.topological circuit);
  { config; load; slew; arc_delay }

let load t id = t.load.(id)
let slew t id = t.slew.(id)
let arc_delays t id = t.arc_delay.(id)

(* In-place recomputation for a topologically-ordered node subset — the
   sizing inner loop re-derives the electrical picture of a subcircuit
   window after a trial resize, leaving everything outside untouched.
   Boundary slews are whatever the arrays currently hold. *)
let recompute_nodes t circuit ids =
  Array.iter
    (fun id ->
      t.load.(id) <- Netlist.Circuit.load circuit id;
      match Netlist.Circuit.cell circuit id with
      | None -> ()
      | Some cell ->
          let fanins = Netlist.Circuit.fanins circuit id in
          let worst_in_slew =
            Array.fold_left (fun acc fi -> Float.max acc t.slew.(fi)) 0.0 fanins
          in
          t.arc_delay.(id) <-
            Array.map
              (fun fi -> Cells.Cell.delay cell ~slew:t.slew.(fi) ~load:t.load.(id))
              fanins;
          t.slew.(id) <- Cells.Cell.slew cell ~slew:worst_in_slew ~load:t.load.(id))
    ids

(* Full in-place refresh: every node, in topological order. Cheap (one LUT
   sweep) and used after each committed resize so subsequent evaluations
   never see stale loads or slews. *)
let recompute_all t circuit =
  List.iter
    (fun id ->
      t.load.(id) <- Netlist.Circuit.load circuit id;
      match Netlist.Circuit.cell circuit id with
      | None -> ()
      | Some cell ->
          let fanins = Netlist.Circuit.fanins circuit id in
          let worst_in_slew =
            Array.fold_left (fun acc fi -> Float.max acc t.slew.(fi)) 0.0 fanins
          in
          t.arc_delay.(id) <-
            Array.map
              (fun fi -> Cells.Cell.delay cell ~slew:t.slew.(fi) ~load:t.load.(id))
              fanins;
          t.slew.(id) <- Cells.Cell.slew cell ~slew:worst_in_slew ~load:t.load.(id))
    (Netlist.Circuit.topological circuit)

(* Saved per-node electrical state, for undoing a trial recomputation. *)
type snapshot = (int * float * float * float array) array

let snapshot t ids =
  Array.map (fun id -> (id, t.load.(id), t.slew.(id), t.arc_delay.(id))) ids

let restore t (snap : snapshot) =
  Array.iter
    (fun (id, load, slew, arcs) ->
      t.load.(id) <- load;
      t.slew.(id) <- slew;
      t.arc_delay.(id) <- arcs)
    snap

let gate_mean_delay t id =
  let arcs = t.arc_delay.(id) in
  if Array.length arcs = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 arcs /. float_of_int (Array.length arcs)

(** Electrical state of a sized circuit: loads, slews (worst-fanin
    propagation) and nominal per-arc delays from the library LUTs. Shared by
    the deterministic, statistical, and Monte-Carlo engines. *)

type config = { input_slew : float; input_arrival : float }

val default_config : config
(** 10 ps boundary slew, time-0 input arrivals. *)

type t = {
  config : config;
  load : float array;
  slew : float array;
  arc_delay : float array array;
}

val compute : ?config:config -> Netlist.Circuit.t -> t

val load : t -> Netlist.Circuit.id -> float
val slew : t -> Netlist.Circuit.id -> float

val arc_delays : t -> Netlist.Circuit.id -> float array
(** Nominal delay per fanin arc ([||] for primary inputs). *)

val gate_mean_delay : t -> Netlist.Circuit.id -> float

val recompute_nodes : t -> Netlist.Circuit.t -> Netlist.Circuit.id array -> unit
(** Recompute load/arc-delays/slew in place for a topologically-ordered node
    subset, reading the circuit's current cells (trial-resize support). *)

val recompute_all : t -> Netlist.Circuit.t -> unit
(** Full in-place refresh of loads, arc delays and slews. *)

type snapshot

val snapshot : t -> Netlist.Circuit.id array -> snapshot
val restore : t -> snapshot -> unit

(* Standard-normal helpers shared by the SSTA engines. *)

let sqrt_two = Float.sqrt 2.0
let sqrt_two_pi = Float.sqrt (2.0 *. Float.pi)

let pdf x = Float.exp (-0.5 *. x *. x) /. sqrt_two_pi

let cdf x = 0.5 *. (1.0 +. Erf.exact (x /. sqrt_two))

let cdf_fast = Erf.phi_quadratic

(* Peter Acklam's rational approximation for the probit function,
   |relative error| < 1.15e-9 over (0, 1). *)
let quantile p =
  if not (p > 0.0 && p < 1.0) then
    invalid_arg (Printf.sprintf "Normal.quantile: p = %g outside (0, 1)" p);
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  and b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  and c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  and d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let p_high = 1.0 -. p_low in
  let tail q sign =
    let q = Float.sqrt (-2.0 *. Float.log q) in
    let num =
      ((((((c.(0) *. q) +. c.(1)) *. q) +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q
      +. c.(5)
    and den = ((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0 in
    sign *. num /. den
  in
  if p < p_low then tail p 1.0
  else if p > p_high then tail (1.0 -. p) (-1.0)
  else
    let q = p -. 0.5 in
    let r = q *. q in
    let num =
      ((((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r
      +. a.(5))
      *. q
    and den =
      ((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.0
    in
    num /. den

(* Probability that N(mean, sigma^2) <= x. A degenerate sigma collapses to a
   step function, which is what a zero-variation delay arc behaves like. *)
let cdf_at ~mean ~sigma x =
  if sigma <= 0.0 then if x >= mean then 1.0 else 0.0
  else cdf ((x -. mean) /. sigma)

let quantile_at ~mean ~sigma p = mean +. (sigma *. quantile p)

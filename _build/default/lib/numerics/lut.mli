(** 2-D lookup tables with bilinear interpolation and edge clamping — the
    NLDM-style timing model of the standard-cell library. *)

type t

val create : rows:float array -> cols:float array -> values:float array array -> t
(** Axes must be strictly increasing; [values.(i).(j)] sits at
    ([rows.(i)], [cols.(j)]). Raises [Invalid_argument] on shape errors. *)

val of_function : rows:float array -> cols:float array -> (float -> float -> float) -> t
(** Tabulate a function on the given grid. *)

val query : t -> row:float -> col:float -> float
(** Bilinear interpolation; queries outside the grid clamp to the edge. *)

val rows : t -> float array
val cols : t -> float array

val map : t -> f:(float -> float) -> t

val pp : t Fmt.t

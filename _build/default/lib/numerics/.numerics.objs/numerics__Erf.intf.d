lib/numerics/erf.mli:

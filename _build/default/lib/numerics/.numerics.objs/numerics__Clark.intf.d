lib/numerics/clark.mli: Fmt

lib/numerics/rng.mli:

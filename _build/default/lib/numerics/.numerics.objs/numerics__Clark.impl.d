lib/numerics/clark.ml: Erf Float Fmt List Normal

lib/numerics/lut.mli: Fmt

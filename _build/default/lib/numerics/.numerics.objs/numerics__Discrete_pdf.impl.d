lib/numerics/discrete_pdf.ml: Array Clark Float Fmt List Normal Stdlib

lib/numerics/erf.ml: Float

lib/numerics/discrete_pdf.mli: Clark Fmt

lib/numerics/normal.mli:

lib/numerics/stats.ml: Array Float Fmt List Stdlib

lib/numerics/normal.ml: Array Erf Float Printf

lib/numerics/eigen.mli:

lib/numerics/lut.ml: Array Fmt Stdlib

lib/numerics/stats.mli: Fmt

lib/numerics/eigen.ml: Array Float Fun Stdlib

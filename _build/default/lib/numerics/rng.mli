(** Deterministic splittable PRNG (splitmix64) for reproducible experiments
    and Monte-Carlo runs. *)

type t

val create : seed:int -> t

val split : t -> t
(** Derive an independent child stream (advances the parent once). *)

val float : t -> float
(** Uniform in [0, 1). *)

val float_range : t -> lo:float -> hi:float -> float

val int : t -> bound:int -> int
(** Uniform in [0, bound); raises on non-positive bound. *)

val bool : t -> bool

val gaussian : t -> float
(** Standard normal draw (Box–Muller). *)

val gaussian_scaled : t -> mean:float -> sigma:float -> float

val shuffle_in_place : t -> 'a array -> unit

(** Standard-normal density, distribution, and quantile functions. *)

val pdf : float -> float
(** Standard-normal density φ. *)

val cdf : float -> float
(** Standard-normal distribution Φ via the reference erf. *)

val cdf_fast : float -> float
(** Φ via the paper's quadratic erf approximation (FASSTA hot path). *)

val quantile : float -> float
(** Inverse of {!cdf} on (0, 1); raises [Invalid_argument] outside. *)

val cdf_at : mean:float -> sigma:float -> float -> float
(** CDF of N(mean, sigma²) at a point; a step function when [sigma <= 0]. *)

val quantile_at : mean:float -> sigma:float -> float -> float
(** Quantile of N(mean, sigma²). *)

val sqrt_two : float
val sqrt_two_pi : float

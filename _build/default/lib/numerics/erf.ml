(* Error function: a high-accuracy reference implementation and the paper's
   fast quadratic approximation (CRC Concise Encyclopedia of Mathematics,
   cited as [23]).

   The CRC quadratic approximates the standard-normal CDF, accurate to two
   decimal places on erf (about 0.005 on Φ):

     Φ(x) - 1/2 = 0.1·x·(4.4 - x)   for 0 <= x <= 2.2
                = 0.49              for 2.2 < x <= 2.6
                = 0.50              for x > 2.6

   (the paper prints it in erf form; Φ(x) = (1 + erf(x/√2))/2). Saturation
   at 2.6 — in sigma units — is exactly the cutoff FASSTA's conditions
   (5)/(6) exploit. erf is recovered as erf(x) = 2·Φ(x·√2) − 1. *)

let phi_saturation_point = 2.6

(* Φ(x) − 1/2 for x ≥ 0, per the CRC quadratic. *)
let phi_excess_magnitude x =
  if x <= 2.2 then 0.1 *. x *. (4.4 -. x)
  else if x <= phi_saturation_point then 0.49
  else 0.5

let phi_quadratic x =
  if x >= 0.0 then 0.5 +. phi_excess_magnitude x
  else 0.5 -. phi_excess_magnitude (-.x)

let sqrt_two = Float.sqrt 2.0

let quadratic x = (2.0 *. phi_quadratic (x *. sqrt_two)) -. 1.0

let quadratic_saturation_point = phi_saturation_point /. sqrt_two

(* Abramowitz & Stegun 7.1.26, |error| <= 1.5e-7: the "exact" reference used
   everywhere outside the FASSTA hot path. *)
let exact x =
  let ax = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. ax)) in
  let poly =
    t
    *. (0.254829592
       +. (t
          *. (-0.284496736
             +. (t *. (1.421413741 +. (t *. (-1.453152027 +. (t *. 1.061405429))))))))
  in
  let v = 1.0 -. (poly *. Float.exp (-.(ax *. ax))) in
  if x >= 0.0 then v else -.v

let erfc x = 1.0 -. exact x

(* Maximum absolute deviation of the quadratic approximation from the
   reference, over a uniform grid on [-bound, bound]. Used by tests and the
   approximation study to confirm the paper's "two decimal places" claim. *)
let max_quadratic_error ?(bound = 4.0) ?(samples = 4001) () =
  assert (samples > 1);
  let step = 2.0 *. bound /. float_of_int (samples - 1) in
  let rec loop i worst =
    if i >= samples then worst
    else
      let x = -.bound +. (float_of_int i *. step) in
      let err = Float.abs (quadratic x -. exact x) in
      loop (i + 1) (Float.max worst err)
  in
  loop 0 0.0

(* Streaming sample statistics (Welford) plus small descriptive helpers used
   by the Monte-Carlo engine and the experiment reports. *)

type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () =
  { count = 0; mean = 0.0; m2 = 0.0; min = Float.infinity; max = Float.neg_infinity }

let add t x =
  t.count <- t.count + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t

let count t = t.count
let mean t = if t.count = 0 then Float.nan else t.mean

let variance t =
  if t.count < 2 then 0.0 else Float.max (t.m2 /. float_of_int (t.count - 1)) 0.0

let population_variance t =
  if t.count = 0 then 0.0 else Float.max (t.m2 /. float_of_int t.count) 0.0

let std t = Float.sqrt (variance t)
let min_value t = t.min
let max_value t = t.max

(* Coefficient of variation σ/μ: the paper's Table-1 headline metric. *)
let sigma_over_mean t =
  let m = mean t in
  if Float.abs m <= 0.0 then Float.nan else std t /. m

let percentile_of_sorted sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile_of_sorted: empty";
  if not (p >= 0.0 && p <= 1.0) then invalid_arg "Stats.percentile_of_sorted: p";
  let rank = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = Stdlib.min (n - 1) (lo + 1) in
  let frac = rank -. float_of_int lo in
  ((1.0 -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let percentile values p =
  let sorted = Array.of_list values in
  Array.sort Float.compare sorted;
  percentile_of_sorted sorted p

let pp ppf t =
  Fmt.pf ppf "@[n=%d μ=%.4g σ=%.4g min=%.4g max=%.4g@]" t.count (mean t) (std t)
    t.min t.max

(** Symmetric eigendecomposition (cyclic Jacobi) for the small covariance
    matrices of the PCA-correlated SSTA extension. *)

type t = {
  values : float array;  (** eigenvalues, descending *)
  vectors : float array array;  (** vectors.(k) = unit eigenvector k *)
}

val decompose : ?max_sweeps:int -> ?tolerance:float -> float array array -> t
(** Raises [Invalid_argument] on non-square or non-symmetric input. *)

val principal_components : ?keep:int -> float array array -> float array array
(** Rows are principal-component loadings: row k = √λₖ · vₖ, so
    Σₖ loadings(k)(i) · loadings(k)(j) ≈ covariance(i)(j). *)

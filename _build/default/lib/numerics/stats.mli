(** Streaming sample statistics (Welford) and percentile helpers. *)

type t

val create : unit -> t
val add : t -> float -> unit
val of_list : float list -> t

val count : t -> int
val mean : t -> float
val variance : t -> float
(** Unbiased (n−1) sample variance; 0 with fewer than two samples. *)

val population_variance : t -> float
val std : t -> float
val min_value : t -> float
val max_value : t -> float

val sigma_over_mean : t -> float
(** Coefficient of variation σ/μ — Table 1's headline metric. *)

val percentile : float list -> float -> float
(** Linear-interpolated percentile, p in [0, 1]. *)

val percentile_of_sorted : float array -> float -> float

val pp : t Fmt.t

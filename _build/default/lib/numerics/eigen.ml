(* Symmetric eigendecomposition by the cyclic Jacobi method — small dense
   matrices only (the PCA grids of the correlated-SSTA extension are at most
   a few dozen cells, where Jacobi is simple, robust and exact enough). *)

type t = {
  values : float array; (* eigenvalues, descending *)
  vectors : float array array; (* vectors.(k) is the k-th eigenvector *)
}

let check_symmetric a =
  let n = Array.length a in
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Eigen: matrix is not square")
    a;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Float.abs (a.(i).(j) -. a.(j).(i)) > 1e-9 *. (1.0 +. Float.abs a.(i).(j))
      then invalid_arg "Eigen: matrix is not symmetric"
    done
  done

let off_diagonal_norm a =
  let n = Array.length a in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then acc := !acc +. (a.(i).(j) *. a.(i).(j))
    done
  done;
  Float.sqrt !acc

(* One Jacobi rotation zeroing a.(p).(q). *)
let rotate a v p q =
  let apq = a.(p).(q) in
  if Float.abs apq > 1e-15 then begin
    let app = a.(p).(p) and aqq = a.(q).(q) in
    let theta = (aqq -. app) /. (2.0 *. apq) in
    let t =
      let sign = if theta >= 0.0 then 1.0 else -1.0 in
      sign /. (Float.abs theta +. Float.sqrt ((theta *. theta) +. 1.0))
    in
    let c = 1.0 /. Float.sqrt ((t *. t) +. 1.0) in
    let s = t *. c in
    let n = Array.length a in
    for k = 0 to n - 1 do
      let akp = a.(k).(p) and akq = a.(k).(q) in
      a.(k).(p) <- (c *. akp) -. (s *. akq);
      a.(k).(q) <- (s *. akp) +. (c *. akq)
    done;
    for k = 0 to n - 1 do
      let apk = a.(p).(k) and aqk = a.(q).(k) in
      a.(p).(k) <- (c *. apk) -. (s *. aqk);
      a.(q).(k) <- (s *. apk) +. (c *. aqk)
    done;
    for k = 0 to n - 1 do
      let vkp = v.(k).(p) and vkq = v.(k).(q) in
      v.(k).(p) <- (c *. vkp) -. (s *. vkq);
      v.(k).(q) <- (s *. vkp) +. (c *. vkq)
    done
  end

let decompose ?(max_sweeps = 100) ?(tolerance = 1e-12) matrix =
  check_symmetric matrix;
  let n = Array.length matrix in
  let a = Array.map Array.copy matrix in
  let v = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1.0 else 0.0)) in
  let sweeps = ref 0 in
  while off_diagonal_norm a > tolerance && !sweeps < max_sweeps do
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        rotate a v p q
      done
    done
  done;
  let order = Array.init n Fun.id in
  Array.sort (fun i j -> Float.compare a.(j).(j) a.(i).(i)) order;
  {
    values = Array.map (fun i -> a.(i).(i)) order;
    vectors = Array.map (fun i -> Array.init n (fun k -> v.(k).(i))) order;
  }

(* Principal square root: columns scaled by sqrt(eigenvalue). Negative
   eigenvalues from numerical noise are clamped at zero. Returns the matrix
   L (components x dims) such that Lᵀ·L ≈ the input covariance; row k is the
   loading of principal component k on each dimension. *)
let principal_components ?(keep = max_int) covariance =
  let e = decompose covariance in
  let n = Array.length e.values in
  let keep = Stdlib.min keep n in
  Array.init keep (fun k ->
      let lambda = Float.max e.values.(k) 0.0 in
      let s = Float.sqrt lambda in
      Array.map (fun x -> s *. x) e.vectors.(k))

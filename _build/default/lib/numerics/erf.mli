(** Error function [erf] — reference implementation plus the paper's fast
    CRC quadratic approximation used by the FASSTA inner engine. *)

val exact : float -> float
(** [exact x] is erf(x) via Abramowitz & Stegun 7.1.26 (|error| ≤ 1.5e-7). *)

val erfc : float -> float
(** [erfc x = 1 - exact x]. *)

val quadratic : float -> float
(** The CRC quadratic erf approximation (accurate to two decimal places),
    derived from {!phi_quadratic} via erf(x) = 2Φ(x√2) − 1. *)

val phi_quadratic : float -> float
(** The CRC quadratic for the standard-normal CDF Φ itself:
    Φ(x) ≈ 0.5 + 0.1·x·(4.4 − x) on [0, 2.2], 0.99 on (2.2, 2.6],
    saturating at 1 beyond 2.6 (odd-extended below 0). *)

val phi_saturation_point : float
(** 2.6 — the sigma-units argument beyond which {!phi_quadratic} is exactly
    0 or 1; the paper's cutoff in conditions (5)/(6). *)

val quadratic_saturation_point : float
(** The same saturation expressed in erf's argument: 2.6/√2. *)

val max_quadratic_error : ?bound:float -> ?samples:int -> unit -> float
(** Largest |quadratic x − exact x| over a uniform grid on [-bound, bound].
    Defaults: bound 4.0, 4001 samples. *)

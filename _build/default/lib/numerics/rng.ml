(* Deterministic splittable PRNG (splitmix64) so every experiment, test and
   Monte-Carlo run is reproducible from a single seed, independent of the
   global [Random] state. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  (* Derive an independent stream: one draw seeds the child. *)
  { state = next_int64 t }

(* Uniform in [0, 1): use the top 53 bits. *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.float_range: hi < lo";
  lo +. ((hi -. lo) *. float t)

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Keep 62 bits: Int64.to_int truncates into OCaml's 63-bit int, where a
     set bit 62 would turn the value negative. *)
  let u = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  u mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Box-Muller; one value per call keeps the stream position predictable. *)
let gaussian t =
  let rec nonzero () =
    let u = float t in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t in
  Float.sqrt (-2.0 *. Float.log u1) *. Float.cos (2.0 *. Float.pi *. u2)

let gaussian_scaled t ~mean ~sigma = mean +. (sigma *. gaussian t)

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

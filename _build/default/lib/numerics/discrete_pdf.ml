(* Discrete probability distributions: the FULLSSTA representation.

   Following Liou et al. (DAC'01), a pdf is a finite list of (value, mass)
   points. The SSTA engine keeps 10-15 points per pdf; [sum] and [max] expand
   the support (cross sums, support union) and the engine re-samples back to
   its budget afterwards.

   Invariants: support strictly increasing, masses non-negative, masses sum
   to 1 (up to float round-off; constructors renormalize). *)

type t = { xs : float array; ps : float array }

let epsilon_mass = 1e-12

let check_invariants t =
  let n = Array.length t.xs in
  n > 0
  && Array.length t.ps = n
  && (let rec incr i = i >= n - 1 || (t.xs.(i) < t.xs.(i + 1) && incr (i + 1)) in
      incr 0)
  && Array.for_all (fun p -> p >= -.epsilon_mass) t.ps
  &&
  let total = Array.fold_left ( +. ) 0.0 t.ps in
  Float.abs (total -. 1.0) < 1e-6

(* Collapse duplicate support points, drop negligible masses, renormalize. *)
let normalize points =
  let points = List.filter (fun (_, p) -> p > epsilon_mass) points in
  let points = List.sort (fun (x, _) (y, _) -> Float.compare x y) points in
  let merged =
    List.fold_left
      (fun acc (x, p) ->
        match acc with
        | (x0, p0) :: rest when Float.abs (x -. x0) <= 1e-12 *. (1.0 +. Float.abs x0)
          ->
            (x0, p0 +. p) :: rest
        | _ -> (x, p) :: acc)
      [] points
  in
  let merged = List.rev merged in
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 merged in
  if total <= 0.0 then invalid_arg "Discrete_pdf: no probability mass";
  let n = List.length merged in
  let xs = Array.make n 0.0 and ps = Array.make n 0.0 in
  List.iteri
    (fun i (x, p) ->
      xs.(i) <- x;
      ps.(i) <- p /. total)
    merged;
  { xs; ps }

let of_points points = normalize points

let constant x = { xs = [| x |]; ps = [| 1.0 |] }

let support_size t = Array.length t.xs
let min_value t = t.xs.(0)
let max_value t = t.xs.(Array.length t.xs - 1)

let points t = Array.to_list (Array.map2 (fun x p -> (x, p)) t.xs t.ps)

let mean t =
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. (x *. t.ps.(i))) t.xs;
  !acc

let variance t =
  let m = mean t in
  let acc = ref 0.0 in
  Array.iteri
    (fun i x ->
      let d = x -. m in
      acc := !acc +. (d *. d *. t.ps.(i)))
    t.xs;
  Float.max !acc 0.0

let std t = Float.sqrt (variance t)

let to_moments t = Clark.moments ~mean:(mean t) ~var:(variance t)

(* Discretize N(mean, sigma²) over mean ± span·sigma with CDF-difference bin
   masses: each support point carries the mass of its surrounding bin, so the
   discretized pdf's CDF interleaves the true CDF. *)
let of_normal ?(span = 4.0) ~samples ~mean ~sigma () =
  if samples < 1 then invalid_arg "Discrete_pdf.of_normal: samples < 1";
  if sigma <= 0.0 then constant mean
  else
    let lo = mean -. (span *. sigma) and hi = mean +. (span *. sigma) in
    let step = (hi -. lo) /. float_of_int samples in
    let bins =
      List.init samples (fun i ->
          let left = lo +. (float_of_int i *. step) in
          let right = left +. step in
          let mass =
            Normal.cdf_at ~mean ~sigma right -. Normal.cdf_at ~mean ~sigma left
          in
          (0.5 *. (left +. right), mass))
    in
    normalize bins

let shift t d = { t with xs = Array.map (fun x -> x +. d) t.xs }

let scale t k =
  if k = 0.0 then constant 0.0
  else if k > 0.0 then { t with xs = Array.map (fun x -> x *. k) t.xs }
  else
    normalize (Array.to_list (Array.map2 (fun x p -> (x *. k, p)) t.xs t.ps))

(* Piecewise-constant CDF: probability mass at or below x. *)
let cdf t x =
  let acc = ref 0.0 in
  (try
     Array.iteri
       (fun i xi ->
         if xi <= x then acc := !acc +. t.ps.(i) else raise Exit)
       t.xs
   with Exit -> ());
  Float.min !acc 1.0

let quantile t p =
  if not (p >= 0.0 && p <= 1.0) then invalid_arg "Discrete_pdf.quantile";
  let n = Array.length t.xs in
  let rec walk i acc =
    if i >= n - 1 then t.xs.(n - 1)
    else
      let acc = acc +. t.ps.(i) in
      if acc >= p then t.xs.(i) else walk (i + 1) acc
  in
  walk 0 0.0

(* Re-bin onto a uniform grid of [samples] bins spanning the support. Each
   bin's mass is split across two points at its centroid ± its within-bin
   standard deviation, so both the mean and the variance are preserved
   exactly — naive centroid binning leaks variance at every propagation
   step, which compounds badly along deep paths. Resulting support is at
   most 2·samples points. *)
let resample t ~samples =
  if samples < 1 then invalid_arg "Discrete_pdf.resample: samples < 1";
  let n = Array.length t.xs in
  if n <= 2 * samples then t
  else
    let lo = min_value t and hi = max_value t in
    if hi <= lo then constant lo
    else
      let width = (hi -. lo) /. float_of_int samples in
      let mass = Array.make samples 0.0 in
      let m1 = Array.make samples 0.0 in
      let m2 = Array.make samples 0.0 in
      Array.iteri
        (fun i x ->
          let b =
            Stdlib.min (samples - 1) (int_of_float ((x -. lo) /. width))
          in
          mass.(b) <- mass.(b) +. t.ps.(i);
          m1.(b) <- m1.(b) +. (t.ps.(i) *. x);
          m2.(b) <- m2.(b) +. (t.ps.(i) *. x *. x))
        t.xs;
      let bins = ref [] in
      for b = samples - 1 downto 0 do
        if mass.(b) > epsilon_mass then begin
          let mu = m1.(b) /. mass.(b) in
          let var = Float.max ((m2.(b) /. mass.(b)) -. (mu *. mu)) 0.0 in
          let sd = Float.sqrt var in
          if sd > 1e-9 *. (1.0 +. Float.abs mu) then
            bins :=
              (mu -. sd, 0.5 *. mass.(b))
              :: (mu +. sd, 0.5 *. mass.(b))
              :: !bins
          else bins := (mu, mass.(b)) :: !bins
        end
      done;
      normalize !bins

(* Sum of independent discrete random variables: cross sums of supports with
   product masses. Callers resample afterwards to bound growth. *)
let sum a b =
  let acc = ref [] in
  Array.iteri
    (fun i xa ->
      Array.iteri
        (fun j xb -> acc := (xa +. xb, a.ps.(i) *. b.ps.(j)) :: !acc)
        b.xs)
    a.xs;
  normalize !acc

(* Max of independent discrete random variables via the CDF product
   F_max(x) = F_A(x) · F_B(x) evaluated on the union of supports. *)
let max2 a b =
  let support =
    List.sort_uniq Float.compare (Array.to_list a.xs @ Array.to_list b.xs)
  in
  let masses =
    let prev = ref 0.0 in
    List.filter_map
      (fun x ->
        let f = cdf a x *. cdf b x in
        let m = f -. !prev in
        prev := f;
        if m > epsilon_mass then Some (x, m) else None)
      support
  in
  normalize masses

let max_list = function
  | [] -> invalid_arg "Discrete_pdf.max_list: empty"
  | t :: rest -> List.fold_left max2 t rest

(* Empirical distribution of raw samples binned to [samples] points; the
   Monte-Carlo engine uses this to build comparable pdfs. *)
let of_samples ~samples values =
  match values with
  | [] -> invalid_arg "Discrete_pdf.of_samples: empty"
  | _ ->
      let n = List.length values in
      let w = 1.0 /. float_of_int n in
      let raw = normalize (List.map (fun v -> (v, w)) values) in
      resample raw ~samples

let pp ppf t =
  Fmt.pf ppf "@[<hov 2>pdf[%d pts, μ=%.4g, σ=%.4g]@]" (support_size t) (mean t)
    (std t)

(** Logic functions implementable by standard cells, with boolean evaluation
    and the logical-effort-style parameters that seed the generated library. *)

type t =
  | Inv
  | Buf
  | Nand of int
  | Nor of int
  | And of int
  | Or of int
  | Xor2
  | Xnor2
  | Aoi21  (** !(a·b + c) *)
  | Oai21  (** !((a+b)·c) *)
  | Mux2  (** s ? b : a — inputs ordered a, b, s *)

val all_shapes : t list
(** Every function the default library provides (arities 2–4 for the
    n-ary gates). *)

val valid : t -> bool
val arity : t -> int
val name : t -> string

val of_name : string -> t option
(** Parses both library names ([NAND3]) and ISCAS [.bench] aliases
    ([NOT], [BUFF], [XOR], …). *)

val eval : t -> bool array -> bool
(** Boolean evaluation; raises [Invalid_argument] on arity mismatch. *)

val inverting : t -> bool

val effort : t -> float
(** Logical effort (load-sensitivity scale, τ units). *)

val parasitic : t -> float
(** Intrinsic parasitic delay (τ units). *)

val base_area : t -> float
(** Minimum-size area in minimum-inverter units. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

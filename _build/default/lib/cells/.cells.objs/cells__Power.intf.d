lib/cells/power.mli: Cell

lib/cells/fn.mli: Fmt

lib/cells/power.ml: Cell Float Fn

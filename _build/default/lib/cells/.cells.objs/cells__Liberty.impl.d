lib/cells/liberty.ml: Array Buffer Cell Fn Fun In_channel Library List Numerics Printf String

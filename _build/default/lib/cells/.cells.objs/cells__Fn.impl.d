lib/cells/fn.ml: Array Fmt Fun List Printf Stdlib String

lib/cells/library.mli: Cell Fmt Fn

lib/cells/library.ml: Array Cell Float Fmt Fn Hashtbl List Numerics Printf

lib/cells/cell.ml: Fmt Fn Numerics String

lib/cells/cell.mli: Fmt Fn Numerics

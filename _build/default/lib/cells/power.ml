(* Cell power model.

   The paper motivates variance reduction partly through power: circuits on
   the fast side of the delay distribution "exhibit undesirable variance in
   power consumption due to both dynamic and leakage power variations"
   (§2.2, Fig. 1 discussion). This module supplies the per-cell numbers the
   power-variability experiment needs:

   - dynamic energy per output toggle: E = ½·C·V² with C the cell's input
     load as seen by its drivers plus its own drive parasitics — derived
     from the cell's input cap and strength at a nominal supply;
   - leakage: sub-threshold leakage scales with total device width (drive
     strength) and is exponentially sensitive to the process corner — the
     fast-die/leaky-die correlation that couples power variance to delay
     variance. *)

type params = {
  supply_v : float; (* volts *)
  leakage_per_strength_nw : float; (* nW per unit drive at nominal corner *)
  leakage_process_lambda : float;
      (* leakage multiplier = exp(lambda · z) for process deviation z:
         fast dies (negative delay z) leak more *)
}

let default_params =
  { supply_v = 1.0; leakage_per_strength_nw = 2.0; leakage_process_lambda = 0.8 }

(* Switched capacitance per output transition (fF): the cell's own output
   parasitics scale with strength; a representative self-load factor stands
   in for layout data. *)
let switched_cap cell = Cell.input_cap cell +. (0.8 *. Cell.strength cell)

(* Dynamic energy per toggle, femtojoules: E = ½ C V². *)
let dynamic_energy_fj ?(params = default_params) cell =
  0.5 *. switched_cap cell *. params.supply_v *. params.supply_v

(* Nominal leakage, nanowatts. *)
let leakage_nw ?(params = default_params) cell =
  params.leakage_per_strength_nw *. Cell.strength cell
  *. (0.6 +. (0.4 *. Fn.base_area (Cell.fn cell)))

(* Leakage at a process corner: z is the standardized process deviation of
   this die/gate (positive z = slow = less leaky). *)
let leakage_at_corner_nw ?(params = default_params) cell ~z =
  leakage_nw ~params cell *. Float.exp (-.params.leakage_process_lambda *. z)

(** Cell power model: dynamic energy per toggle and process-dependent
    sub-threshold leakage (fast dies leak more), backing the power-
    variability experiment the paper's §2.2 motivates. *)

type params = {
  supply_v : float;
  leakage_per_strength_nw : float;
  leakage_process_lambda : float;
}

val default_params : params

val switched_cap : Cell.t -> float
(** Switched capacitance per output transition (fF). *)

val dynamic_energy_fj : ?params:params -> Cell.t -> float
(** ½·C·V² per toggle (fJ). *)

val leakage_nw : ?params:params -> Cell.t -> float
(** Nominal leakage (nW). *)

val leakage_at_corner_nw : ?params:params -> Cell.t -> z:float -> float
(** Leakage at standardized process deviation [z] (positive = slow die =
    less leaky): nominal · exp(−λ·z). *)

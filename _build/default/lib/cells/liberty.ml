(* A minimal line-oriented text format for cell libraries, loosely inspired
   by Liberty. It exists so users can persist a generated library, edit it,
   and reload it — and so real library data can be imported without Synopsys
   tooling. Grammar (one record per cell, '#' starts a comment):

     library <name>
     tau <float>
     strengths <float>+
     cell <name> <fn> <drive_index> <strength> <area> <input_cap>
     slew_axis <float>+
     load_axis <float>+
     delay
     <one row of floats per slew-axis entry>
     output_slew
     <one row of floats per slew-axis entry>
     end
*)

exception Parse_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let floats_to_string fs =
  String.concat " " (List.map (Printf.sprintf "%.17g") (Array.to_list fs))

let write_lut buf keyword lut =
  Buffer.add_string buf keyword;
  Buffer.add_char buf '\n';
  let rows = Numerics.Lut.rows lut and cols = Numerics.Lut.cols lut in
  Array.iter
    (fun r ->
      let row = Array.map (fun c -> Numerics.Lut.query lut ~row:r ~col:c) cols in
      Buffer.add_string buf (floats_to_string row);
      Buffer.add_char buf '\n')
    rows

let to_string (lib : Library.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "library %s\n" (Library.name lib));
  Buffer.add_string buf (Printf.sprintf "tau %.17g\n" (Library.tau lib));
  Buffer.add_string buf
    (Printf.sprintf "strengths %s\n" (floats_to_string (Library.strengths lib)));
  List.iter
    (fun fn ->
      Array.iter
        (fun (c : Cell.t) ->
          Buffer.add_string buf
            (Printf.sprintf "cell %s %s %d %.17g %.17g %.17g\n" c.Cell.name
               (Fn.name c.Cell.fn) c.Cell.drive_index c.Cell.strength c.Cell.area
               c.Cell.input_cap);
          Buffer.add_string buf
            (Printf.sprintf "slew_axis %s\n"
               (floats_to_string (Numerics.Lut.rows c.Cell.delay)));
          Buffer.add_string buf
            (Printf.sprintf "load_axis %s\n"
               (floats_to_string (Numerics.Lut.cols c.Cell.delay)));
          write_lut buf "delay" c.Cell.delay;
          write_lut buf "output_slew" c.Cell.output_slew;
          Buffer.add_string buf "end\n")
        (Library.sizes_of_fn lib fn))
    (Library.functions lib);
  Buffer.contents buf

(* ---- parsing ----------------------------------------------------------- *)

type cursor = { mutable lines : (int * string) list }

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens_of line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let next cursor =
  let rec go () =
    match cursor.lines with
    | [] -> None
    | (n, line) :: rest -> (
        cursor.lines <- rest;
        match tokens_of (strip_comment line) with [] -> go () | toks -> Some (n, toks))
  in
  go ()

let expect cursor what =
  match next cursor with
  | None -> fail 0 "unexpected end of input, expected %s" what
  | Some v -> v

let parse_float line s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail line "bad float %S" s

let parse_floats line toks = Array.of_list (List.map (parse_float line) toks)

let parse_lut cursor ~line ~keyword ~rows ~cols =
  (match expect cursor keyword with
  | _, [ k ] when String.equal k keyword -> ()
  | n, _ -> fail n "expected %S" keyword);
  let values =
    Array.map
      (fun _ ->
        let n, toks = expect cursor "lut row" in
        let row = parse_floats n toks in
        if Array.length row <> Array.length cols then
          fail n "lut row has %d entries, expected %d" (Array.length row)
            (Array.length cols);
        row)
      rows
  in
  ignore line;
  Numerics.Lut.create ~rows ~cols ~values

let parse_cell cursor ~line toks =
  match toks with
  | [ name; fn_name; drive; strength; area; cap ] ->
      let fn =
        match Fn.of_name fn_name with
        | Some fn -> fn
        | None -> fail line "unknown function %S" fn_name
      in
      let drive_index =
        match int_of_string_opt drive with
        | Some d -> d
        | None -> fail line "bad drive index %S" drive
      in
      let slew_axis =
        match expect cursor "slew_axis" with
        | n, "slew_axis" :: rest -> parse_floats n rest
        | n, _ -> fail n "expected slew_axis"
      in
      let load_axis =
        match expect cursor "load_axis" with
        | n, "load_axis" :: rest -> parse_floats n rest
        | n, _ -> fail n "expected load_axis"
      in
      let delay =
        parse_lut cursor ~line ~keyword:"delay" ~rows:slew_axis ~cols:load_axis
      in
      let output_slew =
        parse_lut cursor ~line ~keyword:"output_slew" ~rows:slew_axis
          ~cols:load_axis
      in
      (match expect cursor "end" with
      | _, [ "end" ] -> ()
      | n, _ -> fail n "expected end");
      {
        Cell.name;
        fn;
        drive_index;
        strength = parse_float line strength;
        area = parse_float line area;
        input_cap = parse_float line cap;
        delay;
        output_slew;
      }
  | _ -> fail line "cell header needs 6 fields"

let of_string text =
  let cursor =
    { lines = List.mapi (fun i l -> (i + 1, l)) (String.split_on_char '\n' text) }
  in
  let lib_name =
    match expect cursor "library" with
    | _, [ "library"; n ] -> n
    | n, _ -> fail n "expected 'library <name>'"
  in
  let tau =
    match expect cursor "tau" with
    | n, [ "tau"; v ] -> parse_float n v
    | n, _ -> fail n "expected 'tau <float>'"
  in
  let strengths =
    match expect cursor "strengths" with
    | n, "strengths" :: rest -> parse_floats n rest
    | n, _ -> fail n "expected 'strengths <floats>'"
  in
  let rec cells acc =
    match next cursor with
    | None -> List.rev acc
    | Some (n, "cell" :: rest) -> cells (parse_cell cursor ~line:n rest :: acc)
    | Some (n, tok :: _) -> fail n "expected 'cell', got %S" tok
    | Some (n, []) -> fail n "empty line leaked through"
  in
  Library.of_cells ~name:lib_name ~tau ~strengths (cells [])

let save lib ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string lib))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))

(* Logic functions implementable by library cells. Arities are encoded in the
   constructor (e.g. [Nand 3]) and validated by {!create}-style helpers. *)

type t =
  | Inv
  | Buf
  | Nand of int
  | Nor of int
  | And of int
  | Or of int
  | Xor2
  | Xnor2
  | Aoi21 (* !(a·b + c) *)
  | Oai21 (* !((a+b)·c) *)
  | Mux2 (* s ? b : a, inputs ordered a, b, s *)

let all_shapes =
  [ Inv; Buf; Nand 2; Nand 3; Nand 4; Nor 2; Nor 3; Nor 4; And 2; And 3; And 4;
    Or 2; Or 3; Or 4; Xor2; Xnor2; Aoi21; Oai21; Mux2 ]

let valid = function
  | Inv | Buf | Xor2 | Xnor2 | Aoi21 | Oai21 | Mux2 -> true
  | Nand n | Nor n | And n | Or n -> n >= 2 && n <= 4

let arity = function
  | Inv | Buf -> 1
  | Nand n | Nor n | And n | Or n -> n
  | Xor2 | Xnor2 -> 2
  | Aoi21 | Oai21 | Mux2 -> 3

let name = function
  | Inv -> "INV"
  | Buf -> "BUF"
  | Nand n -> Printf.sprintf "NAND%d" n
  | Nor n -> Printf.sprintf "NOR%d" n
  | And n -> Printf.sprintf "AND%d" n
  | Or n -> Printf.sprintf "OR%d" n
  | Xor2 -> "XOR2"
  | Xnor2 -> "XNOR2"
  | Aoi21 -> "AOI21"
  | Oai21 -> "OAI21"
  | Mux2 -> "MUX2"

let of_name s =
  let s = String.uppercase_ascii s in
  let find () = List.find_opt (fun f -> String.equal (name f) s) all_shapes in
  match find () with
  | Some f -> Some f
  | None -> (
      (* Accept common ISCAS .bench aliases. *)
      match s with
      | "NOT" -> Some Inv
      | "BUFF" -> Some Buf
      | "XOR" -> Some Xor2
      | "XNOR" -> Some Xnor2
      | "NAND" -> Some (Nand 2)
      | "NOR" -> Some (Nor 2)
      | "AND" -> Some (And 2)
      | "OR" -> Some (Or 2)
      | _ -> None)

(* Boolean evaluation, used by simulation-based equivalence tests on the
   benchmark generators. *)
let eval t inputs =
  let n = Array.length inputs in
  if n <> arity t then
    invalid_arg
      (Printf.sprintf "Fn.eval: %s expects %d inputs, got %d" (name t) (arity t) n);
  let all_true () = Array.for_all Fun.id inputs in
  let any_true () = Array.exists Fun.id inputs in
  match t with
  | Inv -> not inputs.(0)
  | Buf -> inputs.(0)
  | Nand _ -> not (all_true ())
  | Nor _ -> not (any_true ())
  | And _ -> all_true ()
  | Or _ -> any_true ()
  | Xor2 -> inputs.(0) <> inputs.(1)
  | Xnor2 -> inputs.(0) = inputs.(1)
  | Aoi21 -> not ((inputs.(0) && inputs.(1)) || inputs.(2))
  | Oai21 -> not ((inputs.(0) || inputs.(1)) && inputs.(2))
  | Mux2 -> if inputs.(2) then inputs.(1) else inputs.(0)

(* Inverting functions matter for slew/polarity bookkeeping; we keep timing
   polarity-independent but expose this for netlist analyses. *)
let inverting = function
  | Inv | Nand _ | Nor _ | Xnor2 | Aoi21 | Oai21 -> true
  | Buf | And _ | Or _ | Xor2 | Mux2 -> false

(* Logical-effort-style electrical parameters that seed the generated
   library: [effort] scales load sensitivity, [parasitic] the intrinsic
   delay (both in units of the technology time constant τ). *)
let effort = function
  | Inv -> 1.0
  | Buf -> 1.1
  | Nand n -> (float_of_int n +. 2.0) /. 3.0
  | Nor n -> ((2.0 *. float_of_int n) +. 1.0) /. 3.0
  | And n -> ((float_of_int n +. 2.0) /. 3.0) +. 0.35
  | Or n -> (((2.0 *. float_of_int n) +. 1.0) /. 3.0) +. 0.35
  | Xor2 -> 4.0
  | Xnor2 -> 4.0
  | Aoi21 -> 2.0
  | Oai21 -> 2.0
  | Mux2 -> 2.0

let parasitic = function
  | Inv -> 1.0
  | Buf -> 2.0
  | Nand n | Nor n -> float_of_int n
  | And n | Or n -> float_of_int n +. 1.0
  | Xor2 | Xnor2 -> 4.0
  | Aoi21 | Oai21 -> 3.0
  | Mux2 -> 3.5

(* Relative layout area of the minimum-size variant, in units of a
   minimum-size inverter. *)
let base_area = function
  | Inv -> 1.0
  | Buf -> 1.6
  | Nand n | Nor n -> float_of_int n *. 0.9
  | And n | Or n -> (float_of_int n *. 0.9) +. 0.7
  | Xor2 | Xnor2 -> 3.2
  | Aoi21 | Oai21 -> 2.4
  | Mux2 -> 3.0

let equal (a : t) (b : t) = a = b
let compare = Stdlib.compare
let pp ppf t = Fmt.string ppf (name t)

(** Minimal Liberty-inspired text serialization for cell libraries, so
    generated libraries can be persisted/edited and external data imported. *)

exception Parse_error of { line : int; message : string }

val to_string : Library.t -> string
val of_string : string -> Library.t

val save : Library.t -> path:string -> unit
val load : path:string -> Library.t

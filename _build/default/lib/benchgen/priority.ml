(* Priority logic — the functional family of ISCAS-85 c432 (a 27-channel
   interrupt controller): maskable request lines, a priority resolver that
   grants the highest-index active request, and a valid flag.

   Structure: a "no higher request" chain from the top priority downward
   (like the comparator's equality chain), AND-ed with each masked request.
   Shallow-ish with one long chain — a useful WNSS workload because every
   grant output shares most of the chain. *)

open Netlist

let generate ?(name = "prio") ?(maskable = true) ~lib ~channels () =
  if channels < 2 then invalid_arg "Priority.generate: channels < 2";
  let bld =
    Build.create ~lib ~name:(Printf.sprintf "%s%d" name channels) ()
  in
  let req = Build.inputs bld ~prefix:"req" ~count:channels in
  let mask =
    if maskable then Build.inputs bld ~prefix:"mask" ~count:channels else [||]
  in
  let active =
    Array.init channels (fun i ->
        if maskable then Build.and_ bld [ req.(i); mask.(i) ] else req.(i))
  in
  (* no_higher.(i) = none of active.(i+1 .. channels-1) *)
  let grants = Array.make channels active.(0) in
  let higher_any = ref None in
  for i = channels - 1 downto 0 do
    (grants.(i) <-
       (match !higher_any with
       | None -> active.(i)
       | Some h ->
           let nh = Build.not_ bld h in
           Build.and_ bld [ active.(i); nh ]));
    higher_any :=
      Some
        (match !higher_any with
        | None -> active.(i)
        | Some h -> Build.or_ bld [ h; active.(i) ])
  done;
  Array.iteri
    (fun i g -> ignore (Build.output ~name:(Printf.sprintf "grant%d" i) bld g))
    grants;
  (match !higher_any with
  | Some any -> ignore (Build.output ~name:"valid" bld (Build.buf bld any))
  | None -> assert false);
  Build.finish bld

(* Parameterized ALU generator — the "various sized ALU circuits" of the
   paper's Table 1. Little-endian operands a/b, a carry input, and a 2-bit
   opcode: 00 add, 01 and, 10 or, 11 xor. Outputs f0..f{n-1}, cout, and a
   zero flag. Shallow (carry chain dominates), which is exactly why these
   circuits show the largest sigma/mean in Table 1. *)

open Netlist

let generate ?(name = "alu") ?(zero_flag = true) ~lib ~bits () =
  if bits < 1 then invalid_arg "Alu.generate: bits < 1";
  let bld = Build.create ~lib ~name:(Printf.sprintf "%s%d" name bits) () in
  let a = Build.inputs bld ~prefix:"a" ~count:bits in
  let b = Build.inputs bld ~prefix:"b" ~count:bits in
  let cin = Build.input bld ~name:"cin" in
  let op0 = Build.input bld ~name:"op0" in
  let op1 = Build.input bld ~name:"op1" in
  let carry = ref cin in
  let results =
    Array.init bits (fun i ->
        let and_i = Build.and_ bld [ a.(i); b.(i) ] in
        let or_i = Build.or_ bld [ a.(i); b.(i) ] in
        let xor_i = Build.xor2 bld a.(i) b.(i) in
        let sum = Build.xor2 bld xor_i !carry in
        (* cout = a·b + cin·(a⊕b) *)
        let cin_axb = Build.and_ bld [ !carry; xor_i ] in
        carry := Build.or_ bld [ and_i; cin_axb ];
        (* 4:1 select from (sum, and, or, xor) via three 2:1 muxes *)
        let low = Build.mux2 bld ~sel:op0 ~a:sum ~b:and_i in
        let high = Build.mux2 bld ~sel:op0 ~a:or_i ~b:xor_i in
        Build.mux2 bld ~sel:op1 ~a:low ~b:high)
  in
  Array.iteri
    (fun i r -> ignore (Build.output ~name:(Printf.sprintf "f%d" i) bld r))
    results;
  ignore (Build.output ~name:"cout" bld !carry);
  if zero_flag then begin
    let any = Build.or_ bld (Array.to_list results) in
    ignore (Build.output ~name:"zero" bld (Build.not_ bld any))
  end;
  Build.finish bld

(** Logarithmic barrel shifter (left shift by the select amount; zeros fill).
    Inputs [d*] and select bits [s*]; outputs [q*]. *)

val generate :
  ?name:string -> lib:Cells.Library.t -> bits:int -> unit -> Netlist.Circuit.t

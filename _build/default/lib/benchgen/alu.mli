(** Parameterized ALU (opcode 00 add, 01 and, 10 or, 11 xor; outputs [f*],
    [cout], and optionally [zero]). *)

val generate :
  ?name:string ->
  ?zero_flag:bool ->
  lib:Cells.Library.t ->
  bits:int ->
  unit ->
  Netlist.Circuit.t

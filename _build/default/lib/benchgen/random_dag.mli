(** Seeded random layered mapped DAGs matched to input/output/gate/depth
    profiles (the ISCAS-85 stand-ins; see DESIGN.md §2). *)

type profile = {
  profile_name : string;
  inputs : int;
  outputs : int;  (** approximate: unread gates are promoted to outputs *)
  gates : int;  (** approximate (±decomposition) *)
  depth : int;  (** hit exactly *)
  seed : int;
}

val generate : lib:Cells.Library.t -> profile -> Netlist.Circuit.t

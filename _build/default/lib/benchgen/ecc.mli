(** Hamming single-error-correcting circuits — the c499/c1355 family. *)

type xor_style =
  | Native  (** library XOR2 cells (c499-like) *)
  | Nand4  (** each XOR as four NAND2s (c1355-like) *)

val check_bit_count : data_bits:int -> int

val hamming_corrector :
  ?name:string ->
  ?style:xor_style ->
  lib:Cells.Library.t ->
  data_bits:int ->
  unit ->
  Netlist.Circuit.t
(** Inputs: data [d*] and received check bits [c*]; outputs corrected data
    [o*]. Any single-bit data error is corrected. *)

val hamming_encoder :
  ?name:string ->
  ?style:xor_style ->
  lib:Cells.Library.t ->
  data_bits:int ->
  unit ->
  Netlist.Circuit.t
(** Pure parity-tree workload: data in, check bits [c*] out. *)

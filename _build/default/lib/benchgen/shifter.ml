(* Barrel shifter: log₂(width) stages of 2:1 muxes, each stage shifting by a
   power of two when its select bit is set. Uniform log-depth mux columns
   with heavy select fanout — a workload between the carry chains (serial)
   and the parity trees (balanced). *)

open Netlist

let generate ?(name = "bshift") ~lib ~bits () =
  if bits < 2 then invalid_arg "Shifter.generate: bits < 2";
  let stages =
    let rec log2 n acc = if n <= 1 then acc else log2 (n / 2) (acc + 1) in
    log2 (bits - 1) 0 + 1
  in
  let bld = Build.create ~lib ~name:(Printf.sprintf "%s%d" name bits) () in
  let data = Build.inputs bld ~prefix:"d" ~count:bits in
  let sel = Build.inputs bld ~prefix:"s" ~count:stages in
  (* zero for bits shifted in: d0 AND NOT d0 *)
  let zero =
    let nd = Build.not_ bld data.(0) in
    Build.and_ bld [ data.(0); nd ]
  in
  let layer = ref (Array.copy data) in
  for stage = 0 to stages - 1 do
    let shift = 1 lsl stage in
    let prev = !layer in
    layer :=
      Array.init bits (fun i ->
          let shifted = if i >= shift then prev.(i - shift) else zero in
          Build.mux2 bld ~sel:sel.(stage) ~a:prev.(i) ~b:shifted)
  done;
  Array.iteri
    (fun i out -> ignore (Build.output ~name:(Printf.sprintf "q%d" i) bld out))
    !layer;
  Build.finish bld

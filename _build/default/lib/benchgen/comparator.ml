(* Magnitude comparator: outputs eq, lt, gt for two unsigned operands.
   Bitwise XNORs feed a MSB-down "all higher bits equal" chain; less-than
   terms tap the chain, and the final chain link is the equality output. *)

open Netlist

let generate ?(name = "cmp") ~lib ~bits () =
  if bits < 1 then invalid_arg "Comparator.generate: bits < 1";
  let bld = Build.create ~lib ~name:(Printf.sprintf "%s%d" name bits) () in
  let a = Build.inputs bld ~prefix:"a" ~count:bits in
  let b = Build.inputs bld ~prefix:"b" ~count:bits in
  let bit_eq = Array.init bits (fun i -> Build.xnor2 bld a.(i) b.(i)) in
  let terms = ref [] in
  let higher_eq = ref None in
  for i = bits - 1 downto 0 do
    let na = Build.not_ bld a.(i) in
    let local = Build.and_ bld [ na; b.(i) ] in
    let term =
      match !higher_eq with
      | None -> local
      | Some h -> Build.and_ bld [ local; h ]
    in
    terms := term :: !terms;
    higher_eq :=
      Some
        (match !higher_eq with
        | None -> bit_eq.(i)
        | Some h -> Build.and_ bld [ h; bit_eq.(i) ])
  done;
  let eq = match !higher_eq with Some e -> e | None -> assert false in
  let lt = Build.or_ bld !terms in
  let gt = Build.nor bld [ lt; eq ] in
  ignore (Build.output ~name:"eq" bld eq);
  ignore (Build.output ~name:"lt" bld lt);
  ignore (Build.output ~name:"gt" bld gt);
  Build.finish bld

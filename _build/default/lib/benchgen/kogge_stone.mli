(** Kogge–Stone parallel-prefix adder (log-depth carries, wide prefix
    fanout). Inputs [a*]/[b*]/[cin]; outputs [sum*]/[cout], little-endian. *)

val generate :
  ?name:string -> lib:Cells.Library.t -> bits:int -> unit -> Netlist.Circuit.t

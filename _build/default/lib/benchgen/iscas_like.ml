(* The Table-1 benchmark suite.

   The genuine ISCAS-85 netlists are distributed data files we do not embed;
   what Table 1's behaviour depends on is each circuit's gate count, depth
   and output structure (see DESIGN.md §2). Circuits with a published
   structural definition are generated for real (c6288 is an actual 16×16
   array multiplier; c499/c1355 are actual 32-bit SEC correctors, the latter
   with NAND-expanded XORs; the alu rows are real ALUs). The control-
   dominated circuits use seeded random DAGs matched to the published
   input/output/gate/depth profiles. Genuine .bench files drop in through
   [Netlist.Bench_io] and run through the same pipeline. *)

type entry = { name : string; build : lib:Cells.Library.t -> Netlist.Circuit.t }

let profile ~name ~inputs ~outputs ~gates ~depth ~seed =
  {
    name;
    build =
      (fun ~lib ->
        Random_dag.generate ~lib
          { Random_dag.profile_name = name; inputs; outputs; gates; depth; seed });
  }

let suite =
  [
    { name = "alu1"; build = (fun ~lib -> Alu.generate ~name:"alu1_" ~lib ~bits:16 ()) };
    { name = "alu2"; build = (fun ~lib -> Alu.generate ~name:"alu2_" ~lib ~bits:10 ()) };
    { name = "alu3"; build = (fun ~lib -> Alu.generate ~name:"alu3_" ~lib ~bits:14 ()) };
    (* 27-channel interrupt controller: 36 in, 7 out, ~200 gates, depth ~18 *)
    profile ~name:"c432" ~inputs:36 ~outputs:7 ~gates:200 ~depth:18 ~seed:432;
    {
      name = "c499";
      build =
        (fun ~lib ->
          Ecc.hamming_corrector ~name:"c499_" ~style:Ecc.Native ~lib ~data_bits:32 ());
    };
    (* 8-bit ALU + control: 60 in, 26 out, ~300 gates, depth ~22 *)
    profile ~name:"c880" ~inputs:60 ~outputs:26 ~gates:300 ~depth:22 ~seed:880;
    {
      name = "c1355";
      build =
        (fun ~lib ->
          Ecc.hamming_corrector ~name:"c1355_" ~style:Ecc.Nand4 ~lib ~data_bits:32 ());
    };
    (* 16-bit SEC/DED: 33 in, 25 out, ~560 gates, depth ~30 *)
    profile ~name:"c1908" ~inputs:33 ~outputs:25 ~gates:560 ~depth:30 ~seed:1908;
    (* 12-bit ALU + control *)
    profile ~name:"c2670" ~inputs:157 ~outputs:64 ~gates:820 ~depth:25 ~seed:2670;
    (* 8-bit ALU *)
    profile ~name:"c3540" ~inputs:50 ~outputs:22 ~gates:1245 ~depth:35 ~seed:3540;
    (* 9-bit ALU *)
    profile ~name:"c5315" ~inputs:178 ~outputs:123 ~gates:2300 ~depth:38 ~seed:5315;
    {
      name = "c6288";
      build = (fun ~lib -> Multiplier.generate ~name:"c6288_" ~lib ~bits:16 ());
    };
    (* 32-bit adder/comparator *)
    profile ~name:"c7552" ~inputs:206 ~outputs:107 ~gates:2750 ~depth:30 ~seed:7552;
  ]

let names = List.map (fun e -> e.name) suite

let find name = List.find_opt (fun e -> String.equal e.name name) suite

let build_exn ~lib name =
  match find name with
  | Some e -> e.build ~lib
  | None ->
      invalid_arg
        (Printf.sprintf "Iscas_like.build_exn: unknown circuit %S (have: %s)" name
           (String.concat ", " names))

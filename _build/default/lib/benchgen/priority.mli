(** Maskable priority resolver (interrupt-controller style, the c432
    functional family): grants the highest-index active request.
    Inputs [req*] (and [mask*] when maskable); outputs one-hot [grant*]
    and [valid]. *)

val generate :
  ?name:string ->
  ?maskable:bool ->
  lib:Cells.Library.t ->
  channels:int ->
  unit ->
  Netlist.Circuit.t

(** Array multiplier (c6288's structure): inputs [a*]/[b*], product outputs
    [p0..p{2n-1}]. *)

val generate :
  ?name:string -> lib:Cells.Library.t -> bits:int -> unit -> Netlist.Circuit.t

(* Adder generators. Inputs are named a0.., b0.., cin; outputs sum0.., cout.
   Bit order is little-endian throughout (bit 0 = LSB), matching
   [Netlist.Simulate.read_unsigned]. *)

open Netlist

(* One full adder; returns (sum, carry_out).
   sum = a ⊕ b ⊕ cin; cout = majority(a, b, cin) built as a·b + cin·(a⊕b). *)
let full_adder b ~a ~b:bb ~cin =
  let axb = Build.xor2 b a bb in
  let sum = Build.xor2 b axb cin in
  let ab = Build.and_ b [ a; bb ] in
  let cin_axb = Build.and_ b [ cin; axb ] in
  let cout = Build.or_ b [ ab; cin_axb ] in
  (sum, cout)

let half_adder b ~a ~b:bb =
  (Build.xor2 b a bb, Build.and_ b [ a; bb ])

let ripple_carry ?(name = "rca") ~lib ~bits () =
  if bits < 1 then invalid_arg "Adder.ripple_carry: bits < 1";
  let builder = Build.create ~lib ~name:(Printf.sprintf "%s%d" name bits) () in
  let a = Build.inputs builder ~prefix:"a" ~count:bits in
  let b = Build.inputs builder ~prefix:"b" ~count:bits in
  let cin = Build.input builder ~name:"cin" in
  let carry = ref cin in
  for i = 0 to bits - 1 do
    let sum, cout = full_adder builder ~a:a.(i) ~b:b.(i) ~cin:!carry in
    ignore (Build.output ~name:(Printf.sprintf "sum%d" i) builder sum);
    carry := cout
  done;
  ignore (Build.output ~name:"cout" builder !carry);
  Build.finish builder

(* Carry-select adder: blocks of [block] bits computed twice (cin=0 / cin=1),
   the real carry picks via muxes. Shallower carry path, more area — the
   classic speed/area point the sizing examples contrast with ripple. *)
let carry_select ?(name = "csa") ~lib ~bits ?(block = 4) () =
  if bits < 1 then invalid_arg "Adder.carry_select: bits < 1";
  if block < 1 then invalid_arg "Adder.carry_select: block < 1";
  let builder = Build.create ~lib ~name:(Printf.sprintf "%s%d" name bits) () in
  let a = Build.inputs builder ~prefix:"a" ~count:bits in
  let b = Build.inputs builder ~prefix:"b" ~count:bits in
  let cin = Build.input builder ~name:"cin" in
  let zero_of b0 =
    (* constant-0 net: a ⊕ a would be illegal (same fanin twice is fine
       electrically but useless); use a·!a instead. *)
    let na = Build.not_ builder b0 in
    Build.and_ builder [ b0; na ]
  in
  let const0 = lazy (zero_of a.(0)) in
  let const1 = lazy (Build.not_ builder (Lazy.force const0)) in
  let carry = ref cin in
  let emit_sum i sum =
    ignore (Build.output ~name:(Printf.sprintf "sum%d" i) builder sum)
  in
  let rec blocks lo =
    if lo < bits then begin
      let hi = Stdlib.min (lo + block) bits in
      if lo = 0 then begin
        (* first block: direct ripple from cin *)
        for i = lo to hi - 1 do
          let sum, cout = full_adder builder ~a:a.(i) ~b:b.(i) ~cin:!carry in
          emit_sum i sum;
          carry := cout
        done
      end
      else begin
        (* speculative pair of ripples, then select *)
        let run cin0 =
          let c = ref cin0 in
          let sums =
            Array.init (hi - lo) (fun k ->
                let i = lo + k in
                let sum, cout = full_adder builder ~a:a.(i) ~b:b.(i) ~cin:!c in
                c := cout;
                sum)
          in
          (sums, !c)
        in
        let sums0, cout0 = run (Lazy.force const0) in
        let sums1, cout1 = run (Lazy.force const1) in
        Array.iteri
          (fun k s0 ->
            let sel = Build.mux2 builder ~sel:!carry ~a:s0 ~b:sums1.(k) in
            emit_sum (lo + k) sel)
          sums0;
        carry := Build.mux2 builder ~sel:!carry ~a:cout0 ~b:cout1
      end;
      blocks hi
    end
  in
  blocks 0;
  ignore (Build.output ~name:"cout" builder !carry);
  Build.finish builder

(* Kogge-Stone parallel-prefix adder: log-depth carry computation with wide
   prefix fanout — the structural opposite of the ripple chain, and a good
   stress case for the sizing engine (many parallel near-critical paths).

   Prefix cell combines (G, P) pairs:  (g, p) ∘ (g', p') = (g + p·g', p·p').
   Inputs a*/b*/cin, outputs sum*/cout, little-endian. *)

open Netlist

let generate ?(name = "ks") ~lib ~bits () =
  if bits < 1 then invalid_arg "Kogge_stone.generate: bits < 1";
  let bld = Build.create ~lib ~name:(Printf.sprintf "%s%d" name bits) () in
  let a = Build.inputs bld ~prefix:"a" ~count:bits in
  let b = Build.inputs bld ~prefix:"b" ~count:bits in
  let cin = Build.input bld ~name:"cin" in
  (* bit-level generate / propagate *)
  let g0 = Array.init bits (fun i -> Build.and_ bld [ a.(i); b.(i) ]) in
  let p0 = Array.init bits (fun i -> Build.xor2 bld a.(i) b.(i)) in
  (* prefix levels: span doubles each level *)
  let g = ref (Array.copy g0) and p = ref (Array.copy p0) in
  let span = ref 1 in
  while !span < bits do
    let gn = Array.copy !g and pn = Array.copy !p in
    for i = !span to bits - 1 do
      (* (g,p)_i ∘ (g,p)_{i-span} *)
      let pg' = Build.and_ bld [ !p.(i); !g.(i - !span) ] in
      gn.(i) <- Build.or_ bld [ !g.(i); pg' ];
      pn.(i) <- Build.and_ bld [ !p.(i); !p.(i - !span) ]
    done;
    g := gn;
    p := pn;
    span := 2 * !span
  done;
  (* carries: c_0 = cin; c_{i+1} = G_i + P_i·cin (prefix over bits 0..i) *)
  let carry =
    Array.init (bits + 1) (fun i ->
        if i = 0 then cin
        else
          let pc = Build.and_ bld [ !p.(i - 1); cin ] in
          Build.or_ bld [ !g.(i - 1); pc ])
  in
  for i = 0 to bits - 1 do
    let s = Build.xor2 bld p0.(i) carry.(i) in
    ignore (Build.output ~name:(Printf.sprintf "sum%d" i) bld s)
  done;
  ignore (Build.output ~name:"cout" bld (Build.buf bld carry.(bits)));
  Build.finish bld

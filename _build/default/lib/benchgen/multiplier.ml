(* Array multiplier, the structure of ISCAS-85 c6288 (a 16×16 multiplier).
   n² AND partial products accumulated row by row with ripple-carry adder
   rows. The deepest circuit in the suite — which is why Table 1 gives it
   the smallest starting sigma/mean and the least improvement.

   Accumulator invariant: after processing rows 0..j, [acc.(k)] carries
   product weight j + k, and product bits of weight < j have already been
   emitted as outputs. *)

open Netlist

let generate ?(name = "mult") ~lib ~bits () =
  if bits < 1 then invalid_arg "Multiplier.generate: bits < 1";
  let bld = Build.create ~lib ~name:(Printf.sprintf "%s%dx%d" name bits bits) () in
  let a = Build.inputs bld ~prefix:"a" ~count:bits in
  let b = Build.inputs bld ~prefix:"b" ~count:bits in
  let pp i j = Build.and_ bld [ a.(i); b.(j) ] in
  let emit k id = ignore (Build.output ~name:(Printf.sprintf "p%d" k) bld id) in
  let acc = ref (Array.init bits (fun k -> pp k 0)) in
  for j = 1 to bits - 1 do
    emit (j - 1) !acc.(0);
    let rest = Array.sub !acc 1 (Array.length !acc - 1) in
    let next = ref [] in
    let carry = ref None in
    for k = 0 to bits - 1 do
      let operands =
        (if k < Array.length rest then [ rest.(k) ] else [])
        @ [ pp k j ]
        @ (match !carry with Some c -> [ c ] | None -> [])
      in
      match operands with
      | [ x ] ->
          next := x :: !next;
          carry := None
      | [ x; y ] ->
          let s, c = Adder.half_adder bld ~a:x ~b:y in
          next := s :: !next;
          carry := Some c
      | [ x; y; z ] ->
          let s, c = Adder.full_adder bld ~a:x ~b:y ~cin:z in
          next := s :: !next;
          carry := Some c
      | _ -> assert false
    done;
    let next =
      match !carry with Some c -> c :: !next | None -> !next
    in
    acc := Array.of_list (List.rev next)
  done;
  Array.iteri (fun k id -> emit (bits - 1 + k) id) !acc;
  Build.finish bld

lib/benchgen/alu.ml: Array Build Netlist Printf

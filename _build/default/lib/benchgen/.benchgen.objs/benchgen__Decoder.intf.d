lib/benchgen/decoder.mli: Cells Netlist

lib/benchgen/multiplier.mli: Cells Netlist

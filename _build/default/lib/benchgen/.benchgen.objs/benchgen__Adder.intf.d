lib/benchgen/adder.mli: Cells Netlist

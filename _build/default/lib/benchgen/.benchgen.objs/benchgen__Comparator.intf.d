lib/benchgen/comparator.mli: Cells Netlist

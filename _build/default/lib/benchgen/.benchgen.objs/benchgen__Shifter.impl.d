lib/benchgen/shifter.ml: Array Build Netlist Printf

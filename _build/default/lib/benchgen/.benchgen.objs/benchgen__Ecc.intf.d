lib/benchgen/ecc.mli: Cells Netlist

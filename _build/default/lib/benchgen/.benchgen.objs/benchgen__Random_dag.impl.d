lib/benchgen/random_dag.ml: Array Build Cells Circuit Hashtbl List Netlist Numerics Stdlib

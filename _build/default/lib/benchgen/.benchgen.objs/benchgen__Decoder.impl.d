lib/benchgen/decoder.ml: Array Build List Netlist Printf

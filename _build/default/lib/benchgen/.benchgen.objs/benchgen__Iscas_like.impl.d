lib/benchgen/iscas_like.ml: Alu Cells Ecc List Multiplier Netlist Printf Random_dag String

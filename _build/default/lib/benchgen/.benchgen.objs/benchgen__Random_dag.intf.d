lib/benchgen/random_dag.mli: Cells Netlist

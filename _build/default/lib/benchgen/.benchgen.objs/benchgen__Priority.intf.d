lib/benchgen/priority.mli: Cells Netlist

lib/benchgen/shifter.mli: Cells Netlist

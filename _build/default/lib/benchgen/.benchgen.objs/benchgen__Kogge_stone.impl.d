lib/benchgen/kogge_stone.ml: Array Build Netlist Printf

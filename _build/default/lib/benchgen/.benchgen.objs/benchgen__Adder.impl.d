lib/benchgen/adder.ml: Array Build Lazy Netlist Printf Stdlib

lib/benchgen/alu.mli: Cells Netlist

lib/benchgen/kogge_stone.mli: Cells Netlist

lib/benchgen/comparator.ml: Array Build Netlist Printf

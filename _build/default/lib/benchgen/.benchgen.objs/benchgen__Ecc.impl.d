lib/benchgen/ecc.ml: Array Build Hashtbl List Netlist Printf

lib/benchgen/iscas_like.mli: Cells Netlist

lib/benchgen/multiplier.ml: Adder Array Build List Netlist Printf

lib/benchgen/priority.ml: Array Build Netlist Printf

(** Shallow fanout-heavy workloads. *)

val generate :
  ?name:string -> lib:Cells.Library.t -> bits:int -> unit -> Netlist.Circuit.t
(** n-to-2^n decoder with enable (outputs [y0..]); [bits] ≤ 8. *)

val mux_tree :
  ?name:string -> lib:Cells.Library.t -> select_bits:int -> unit -> Netlist.Circuit.t
(** 2^n:1 multiplexer tree (output [y]); [select_bits] ≤ 8. *)

(** The Table-1 benchmark suite: alu1/2/3 and c432…c7552 equivalents
    (structural circuits where the original is structurally defined, seeded
    profile DAGs otherwise — DESIGN.md §2). *)

type entry = { name : string; build : lib:Cells.Library.t -> Netlist.Circuit.t }

val suite : entry list
(** In Table 1's row order. *)

val names : string list
val find : string -> entry option
val build_exn : lib:Cells.Library.t -> string -> Netlist.Circuit.t

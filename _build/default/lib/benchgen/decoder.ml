(* n-to-2^n decoder with enable — wide, shallow, single-level fanout-heavy:
   a useful contrast workload for the sizing engine (many near-critical
   parallel paths of identical depth). *)

open Netlist

let generate ?(name = "dec") ~lib ~bits () =
  if bits < 1 then invalid_arg "Decoder.generate: bits < 1";
  if bits > 8 then invalid_arg "Decoder.generate: bits > 8 (2^n outputs)";
  let bld = Build.create ~lib ~name:(Printf.sprintf "%s%d" name bits) () in
  let sel = Build.inputs bld ~prefix:"s" ~count:bits in
  let enable = Build.input bld ~name:"en" in
  let nsel = Array.map (fun s -> Build.not_ bld s) sel in
  for v = 0 to (1 lsl bits) - 1 do
    let literals =
      List.init bits (fun i -> if v land (1 lsl i) <> 0 then sel.(i) else nsel.(i))
    in
    let hit = Build.and_ bld (enable :: literals) in
    ignore (Build.output ~name:(Printf.sprintf "y%d" v) bld hit)
  done;
  Build.finish bld

(* Multiplexer tree: 2^n data inputs selected by n bits; log-depth mux
   column. *)
let mux_tree ?(name = "muxt") ~lib ~select_bits () =
  if select_bits < 1 then invalid_arg "Decoder.mux_tree: select_bits < 1";
  if select_bits > 8 then invalid_arg "Decoder.mux_tree: select_bits > 8";
  let bld = Build.create ~lib ~name:(Printf.sprintf "%s%d" name select_bits) () in
  let data = Build.inputs bld ~prefix:"d" ~count:(1 lsl select_bits) in
  let sel = Build.inputs bld ~prefix:"s" ~count:select_bits in
  let layer = ref (Array.to_list data) in
  for level = 0 to select_bits - 1 do
    let rec pair = function
      | a :: b :: rest -> Build.mux2 bld ~sel:sel.(level) ~a ~b :: pair rest
      | [ x ] -> [ x ]
      | [] -> []
    in
    layer := pair !layer
  done;
  (match !layer with
  | [ root ] -> ignore (Build.output ~name:"y" bld root)
  | _ -> assert false);
  Build.finish bld

(* Random layered technology-mapped DAGs with target input/output/gate/depth
   profiles.

   Used for the ISCAS-85 profile stand-ins (the genuine netlists are not
   redistributable data we can embed; what Table 1's behaviour depends on is
   gate count, depth and output structure — see DESIGN.md §2) and as a
   workload source for property tests.

   Construction is layered: every gate takes at least one fanin from the
   immediately previous layer (so the depth target is hit exactly as long as
   each layer is non-empty) and remaining fanins from arbitrary earlier
   nodes, biased toward nodes that do not yet drive anything, which keeps
   dangling logic rare. Whatever remains unused at the end is promoted to a
   primary output, so the output count is approximate by design. *)

open Netlist

type profile = {
  profile_name : string;
  inputs : int;
  outputs : int;
  gates : int;
  depth : int;
  seed : int;
}

let weighted_fns =
  [ (28, Cells.Fn.Nand 2); (12, Cells.Fn.Nor 2); (12, Cells.Fn.And 2);
    (10, Cells.Fn.Or 2); (12, Cells.Fn.Inv); (8, Cells.Fn.Xor2);
    (8, Cells.Fn.Nand 3); (4, Cells.Fn.Nor 3); (3, Cells.Fn.Aoi21);
    (3, Cells.Fn.Oai21) ]

let total_weight = List.fold_left (fun acc (w, _) -> acc + w) 0 weighted_fns

let pick_fn rng =
  let roll = Numerics.Rng.int rng ~bound:total_weight in
  let rec go acc = function
    | [] -> assert false
    | (w, fn) :: rest -> if roll < acc + w then fn else go (acc + w) rest
  in
  go 0 weighted_fns

let generate ~lib profile =
  if profile.inputs < 2 then invalid_arg "Random_dag.generate: inputs < 2";
  if profile.gates < 1 then invalid_arg "Random_dag.generate: gates < 1";
  if profile.depth < 1 then invalid_arg "Random_dag.generate: depth < 1";
  if profile.outputs < 1 then invalid_arg "Random_dag.generate: outputs < 1";
  let depth = Stdlib.min profile.depth profile.gates in
  let rng = Numerics.Rng.create ~seed:profile.seed in
  let bld = Build.create ~lib ~name:profile.profile_name () in
  let inputs = Build.inputs bld ~prefix:"i" ~count:profile.inputs in
  let circuit = Build.circuit bld in
  (* unused: nodes with no reader yet, per level; all_nodes: per level *)
  let levels = Array.make (depth + 1) [] in
  levels.(0) <- Array.to_list inputs;
  let unused = Hashtbl.create 997 in
  Array.iter (fun id -> Hashtbl.replace unused id 0) inputs;
  let mark_used id = Hashtbl.remove unused id in
  let pick_from_list rng nodes =
    List.nth nodes (Numerics.Rng.int rng ~bound:(List.length nodes))
  in
  (* Prefer an unused node from the candidate list when one exists. *)
  let pick_biased rng nodes =
    let fresh = List.filter (Hashtbl.mem unused) nodes in
    match fresh with
    | [] -> pick_from_list rng nodes
    | _ when Numerics.Rng.float rng < 0.7 -> pick_from_list rng fresh
    | _ -> pick_from_list rng nodes
  in
  let earlier_nodes level =
    List.concat (List.init level (fun l -> levels.(l)))
  in
  (* Distribute gates across layers: every layer gets at least one. *)
  let per_level = Array.make (depth + 1) 0 in
  for l = 1 to depth do
    per_level.(l) <- 1
  done;
  for _ = 1 to profile.gates - depth do
    let l = 1 + Numerics.Rng.int rng ~bound:depth in
    per_level.(l) <- per_level.(l) + 1
  done;
  for level = 1 to depth do
    let prev = levels.(level - 1) in
    let earlier = earlier_nodes level in
    for _ = 1 to per_level.(level) do
      let fn = pick_fn rng in
      let arity = Cells.Fn.arity fn in
      let first = pick_biased rng prev in
      let fanins =
        Array.init arity (fun k ->
            if k = 0 then first else pick_biased rng earlier)
      in
      (* A gate fed twice by the same net is legal but degenerate; retry the
         duplicates against the full earlier pool. *)
      let seen = Hashtbl.create 7 in
      let fanins =
        Array.map
          (fun id ->
            if Hashtbl.mem seen id then pick_biased rng earlier
            else begin
              Hashtbl.add seen id ();
              id
            end)
          fanins
      in
      let gate = Build.gate bld fn fanins in
      Array.iter mark_used fanins;
      Hashtbl.replace unused gate 0;
      levels.(level) <- gate :: levels.(level)
    done
  done;
  (* Primary outputs: every still-unused gate must be observed; if that
     falls short of the requested count, promote the deepest gates too. *)
  let unused_gates =
    Hashtbl.fold
      (fun id _ acc -> if Circuit.is_input circuit id then acc else id :: acc)
      unused []
    |> List.sort Stdlib.compare
  in
  List.iter (fun id -> Circuit.mark_output circuit id) unused_gates;
  let deficit = profile.outputs - List.length unused_gates in
  if deficit > 0 then begin
    let candidates =
      List.concat
        (List.init depth (fun k ->
             List.filter
               (fun id -> not (Circuit.is_output circuit id))
               levels.(depth - k)))
    in
    List.iteri
      (fun i id -> if i < deficit then Circuit.mark_output circuit id)
      candidates
  end;
  (* Unused primary inputs would fail validation in spirit (they are legal
     but pointless); absorb them into a parity sink output. *)
  let unused_inputs =
    List.filter (fun id -> Circuit.fanouts circuit id = []) (Array.to_list inputs)
  in
  (match unused_inputs with
  | [] -> ()
  | ids -> ignore (Build.output ~name:"sink" bld (Build.xor bld ids)));
  Build.finish bld

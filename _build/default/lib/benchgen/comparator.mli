(** Unsigned magnitude comparator: outputs [eq], [lt], [gt]. *)

val generate :
  ?name:string -> lib:Cells.Library.t -> bits:int -> unit -> Netlist.Circuit.t

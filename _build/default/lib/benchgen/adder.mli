(** Adder generators (little-endian operands [a*]/[b*], carry [cin]; outputs
    [sum*], [cout]). *)

val full_adder :
  Netlist.Build.t ->
  a:Netlist.Circuit.id ->
  b:Netlist.Circuit.id ->
  cin:Netlist.Circuit.id ->
  Netlist.Circuit.id * Netlist.Circuit.id
(** (sum, carry-out) — 5 gates, shared by the multiplier. *)

val half_adder :
  Netlist.Build.t ->
  a:Netlist.Circuit.id ->
  b:Netlist.Circuit.id ->
  Netlist.Circuit.id * Netlist.Circuit.id

val ripple_carry :
  ?name:string -> lib:Cells.Library.t -> bits:int -> unit -> Netlist.Circuit.t

val carry_select :
  ?name:string ->
  lib:Cells.Library.t ->
  bits:int ->
  ?block:int ->
  unit ->
  Netlist.Circuit.t
(** Carry-select adder with [block]-bit speculative blocks (default 4). *)

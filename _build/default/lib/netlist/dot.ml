(* Graphviz DOT export, with optional per-node annotations — handy for
   eyeballing WNSS paths and criticality maps:

     dune exec bin/statsize.exe -- dot alu2 /tmp/alu2.dot
     dot -Tsvg /tmp/alu2.dot -o alu2.svg *)

type style = {
  label : string option; (* extra line under the node name *)
  highlight : bool; (* filled red: critical/WNSS membership *)
}

let default_style = { label = None; highlight = false }

let escape s =
  String.concat ""
    (List.map
       (fun c -> match c with '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_dot ?(graph_name = "circuit") ?(style = fun _ -> default_style) circuit =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "digraph \"%s\" {\n" (escape graph_name);
  add "  rankdir=LR;\n  node [fontsize=9];\n";
  Circuit.iter_nodes circuit ~f:(fun id ->
      let name = Circuit.node_name circuit id in
      let s = style id in
      let shape, base_label =
        match Circuit.cell circuit id with
        | None -> ("ellipse", name)
        | Some cell -> ("box", Printf.sprintf "%s\\n%s" name (Cells.Cell.name cell))
      in
      let label =
        match s.label with
        | None -> base_label
        | Some extra -> Printf.sprintf "%s\\n%s" base_label (escape extra)
      in
      let attrs =
        if s.highlight then ", style=filled, fillcolor=\"#f4a9a0\""
        else if Circuit.is_output circuit id then
          ", style=filled, fillcolor=\"#cfe3f7\""
        else ""
      in
      add "  n%d [shape=%s, label=\"%s\"%s];\n" id shape (escape label) attrs);
  Circuit.iter_nodes circuit ~f:(fun id ->
      Array.iter
        (fun fi -> add "  n%d -> n%d;\n" fi id)
        (Circuit.fanins circuit id));
  add "}\n";
  Buffer.contents buf

let save ?graph_name ?style circuit ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot ?graph_name ?style circuit))

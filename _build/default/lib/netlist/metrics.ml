(* Descriptive circuit metrics for reports and the DESIGN/EXPERIMENTS docs. *)

type t = {
  name : string;
  input_count : int;
  output_count : int;
  gate_count : int;
  depth : int;
  area : float;
  max_fanout : int;
  avg_fanin : float;
  fn_histogram : (string * int) list; (* cell-function name -> count *)
}

let compute c =
  let gate_ids = Circuit.gates c in
  let fanin_total =
    List.fold_left (fun acc id -> acc + Array.length (Circuit.fanins c id)) 0 gate_ids
  in
  let max_fanout =
    List.fold_left
      (fun acc id -> Stdlib.max acc (List.length (Circuit.fanouts c id)))
      0
      (Circuit.topological c)
  in
  let hist = Hashtbl.create 31 in
  List.iter
    (fun id ->
      let key = Cells.Fn.name (Cells.Cell.fn (Circuit.cell_exn c id)) in
      Hashtbl.replace hist key (1 + Option.value ~default:0 (Hashtbl.find_opt hist key)))
    gate_ids;
  let gate_count = List.length gate_ids in
  {
    name = Circuit.name c;
    input_count = List.length (Circuit.inputs c);
    output_count = List.length (Circuit.outputs c);
    gate_count;
    depth = Levelize.depth c;
    area = Circuit.total_area c;
    max_fanout;
    avg_fanin =
      (if gate_count = 0 then 0.0
       else float_of_int fanin_total /. float_of_int gate_count);
    fn_histogram =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) hist []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
  }

let pp ppf m =
  Fmt.pf ppf
    "@[<v>%s: %d in / %d out / %d gates, depth %d, area %.1f, max fanout %d, avg \
     fanin %.2f@]"
    m.name m.input_count m.output_count m.gate_count m.depth m.area m.max_fanout
    m.avg_fanin

(* Logic levels and depth. Level 0 = primary inputs; a gate's level is one
   more than its deepest fanin. The paper leans on depth repeatedly: path
   variance averages out with gate count, so shallow circuits carry the
   largest sigma/mean ratios (Table 1's alu rows vs. c6288). *)

let levels t =
  let lv = Array.make (Circuit.size t) 0 in
  List.iter
    (fun id ->
      let fis = Circuit.fanins t id in
      if Array.length fis > 0 then
        lv.(id) <- 1 + Array.fold_left (fun acc fi -> Stdlib.max acc lv.(fi)) 0 fis)
    (Circuit.topological t);
  lv

let depth t =
  let lv = levels t in
  List.fold_left (fun acc o -> Stdlib.max acc lv.(o)) 0 (Circuit.outputs t)

(* Nodes grouped by level, each group in id order. *)
let by_level t =
  let lv = levels t in
  let d = Array.fold_left Stdlib.max 0 lv in
  let buckets = Array.make (d + 1) [] in
  List.iter (fun id -> buckets.(lv.(id)) <- id :: buckets.(lv.(id)))
    (List.rev (Circuit.topological t));
  Array.map (fun b -> b) buckets

(* Longest path (in gate count) from any input to each output. *)
let output_depths t =
  let lv = levels t in
  List.map (fun o -> (o, lv.(o))) (Circuit.outputs t)

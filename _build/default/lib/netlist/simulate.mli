(** Boolean simulation of mapped circuits — the functional oracle for the
    benchmark generators. *)

type assignment = (string * bool) list

val run : Circuit.t -> inputs:assignment -> (string * bool) list
(** Evaluate with every primary input named exactly once; returns all primary
    outputs with their names. Raises [Invalid_argument] on missing, unknown,
    or non-input names. *)

val run_vector : Circuit.t -> bits:bool array -> bool array
(** Positional form: bits follow the order of [Circuit.inputs]/[outputs]. *)

val read_unsigned : (string * bool) list -> prefix:string -> int
(** Decode outputs named [prefix0], [prefix1], … as a little-endian unsigned
    integer. *)

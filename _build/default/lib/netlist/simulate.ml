(* Boolean simulation. Functional correctness of the generators (adders
   really add, the multiplier really multiplies) is checked by evaluating
   the mapped netlist against the arithmetic spec. *)

type assignment = (string * bool) list

let eval_ids t values =
  List.iter
    (fun id ->
      match Circuit.cell t id with
      | None -> () (* primary input: already set *)
      | Some cell ->
          let fis = Circuit.fanins t id in
          let ins = Array.map (fun fi -> values.(fi)) fis in
          values.(id) <- Cells.Fn.eval (Cells.Cell.fn cell) ins)
    (Circuit.topological t)

let run t ~inputs =
  let values = Array.make (Circuit.size t) false in
  List.iter
    (fun (name, v) ->
      match Circuit.find t ~name with
      | Some id when Circuit.is_input t id -> values.(id) <- v
      | Some _ -> invalid_arg (Printf.sprintf "Simulate.run: %S is not an input" name)
      | None -> invalid_arg (Printf.sprintf "Simulate.run: unknown input %S" name))
    inputs;
  let given = List.length inputs and expected = List.length (Circuit.inputs t) in
  if given <> expected then
    invalid_arg
      (Printf.sprintf "Simulate.run: %d inputs given, circuit has %d" given expected);
  eval_ids t values;
  List.map (fun id -> (Circuit.node_name t id, values.(id))) (Circuit.outputs t)

let run_vector t ~bits =
  let input_ids = Circuit.inputs t in
  if Array.length bits <> List.length input_ids then
    invalid_arg "Simulate.run_vector: bit-width mismatch";
  let values = Array.make (Circuit.size t) false in
  List.iteri (fun i id -> values.(id) <- bits.(i)) input_ids;
  eval_ids t values;
  Array.of_list (List.map (fun id -> values.(id)) (Circuit.outputs t))

(* Interpret a list of named outputs as a little-endian unsigned integer,
   selecting outputs by prefix, e.g. "sum" -> sum0, sum1, ... *)
let read_unsigned outputs ~prefix =
  let bits =
    List.filter_map
      (fun (name, v) ->
        if String.length name > String.length prefix
           && String.sub name 0 (String.length prefix) = prefix
        then
          match
            int_of_string_opt
              (String.sub name (String.length prefix)
                 (String.length name - String.length prefix))
          with
          | Some idx -> Some (idx, v)
          | None -> None
        else None)
      outputs
  in
  List.fold_left
    (fun acc (idx, v) -> if v then acc lor (1 lsl idx) else acc)
    0 bits

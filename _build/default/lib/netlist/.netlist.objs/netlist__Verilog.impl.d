lib/netlist/verilog.ml: Array Buffer Cells Char Circuit Fun List Printf String

lib/netlist/cone.mli: Circuit Fmt Int Set

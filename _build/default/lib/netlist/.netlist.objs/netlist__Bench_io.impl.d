lib/netlist/bench_io.ml: Array Buffer Build Cells Circuit Fun Hashtbl In_channel List Printf String

lib/netlist/build.mli: Cells Circuit

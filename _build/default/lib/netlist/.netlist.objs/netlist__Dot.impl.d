lib/netlist/dot.ml: Array Buffer Cells Circuit Fun List Printf String

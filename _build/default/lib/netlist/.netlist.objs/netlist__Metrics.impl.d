lib/netlist/metrics.ml: Array Cells Circuit Fmt Hashtbl Levelize List Option Stdlib String

lib/netlist/levelize.ml: Array Circuit List Stdlib

lib/netlist/build.ml: Array Cells Circuit List Printf Stdlib String

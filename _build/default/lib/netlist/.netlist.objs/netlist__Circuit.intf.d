lib/netlist/circuit.mli: Cells Fmt

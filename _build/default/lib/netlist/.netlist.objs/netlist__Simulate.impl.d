lib/netlist/simulate.ml: Array Cells Circuit List Printf String

lib/netlist/circuit.ml: Array Cells Fmt Fun Hashtbl List Printf Vec

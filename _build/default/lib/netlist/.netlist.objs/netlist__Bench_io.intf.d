lib/netlist/bench_io.mli: Cells Circuit

lib/netlist/cone.ml: Array Circuit Fmt Hashtbl Int List Set Stdlib

lib/netlist/metrics.mli: Circuit Fmt

lib/netlist/simulate.mli: Circuit

(** Transitive fanin/fanout cones and the bounded subcircuit window the
    sizing inner loop evaluates (paper §4.5). *)

val transitive_fanin : Circuit.t -> Circuit.id -> depth:int -> Circuit.id list
(** Gates (primary inputs excluded) within [depth] fanin levels, ascending. *)

val transitive_fanout : Circuit.t -> Circuit.id -> depth:int -> Circuit.id list

val input_cone : Circuit.t -> Circuit.id -> Circuit.id list
(** Full-depth input cone including primary inputs, ascending ids. *)

type subcircuit = {
  pivot : Circuit.id;
  members : Circuit.id array;  (** window gates, topologically ordered *)
  boundary_inputs : Circuit.id list;
      (** nodes outside the window feeding it (their timing is frozen) *)
  window_outputs : Circuit.id list;
      (** members whose outputs are observed outside the window *)
}

val extract : Circuit.t -> pivot:Circuit.id -> depth:int -> subcircuit
(** Window of [depth] TFI and TFO levels around a gate. Raises if the pivot
    is a primary input. *)

val member_set : subcircuit -> Set.Make(Int).t

val pp_subcircuit : Circuit.t -> subcircuit Fmt.t

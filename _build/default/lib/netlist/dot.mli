(** Graphviz DOT export with optional per-node annotations (criticality
    highlighting, extra labels). *)

type style = { label : string option; highlight : bool }

val default_style : style

val to_dot :
  ?graph_name:string -> ?style:(Circuit.id -> style) -> Circuit.t -> string

val save :
  ?graph_name:string ->
  ?style:(Circuit.id -> style) ->
  Circuit.t ->
  path:string ->
  unit

(** Logic levels and circuit depth (level 0 = primary inputs). *)

val levels : Circuit.t -> int array
(** Level per node id. *)

val depth : Circuit.t -> int
(** Deepest level among primary outputs. *)

val by_level : Circuit.t -> Circuit.id list array
(** Nodes grouped by level. *)

val output_depths : Circuit.t -> (Circuit.id * int) list

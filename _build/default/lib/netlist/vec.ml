(* Growable array. OCaml 5.1 predates Stdlib.Dynarray, so circuits carry
   their own minimal version. *)

type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ~dummy = { data = Array.make 16 dummy; len = 0; dummy }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  t.data.(i) <- v

let push t v =
  if t.len = Array.length t.data then begin
    let grown = Array.make (2 * Array.length t.data) t.dummy in
    Array.blit t.data 0 grown 0 t.len;
    t.data <- grown
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1;
  t.len - 1

let iter t ~f =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri t ~f =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.init t.len (fun i -> t.data.(i))

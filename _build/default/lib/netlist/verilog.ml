(* Structural gate-level Verilog writer. Cell instances reference the
   library cells by name with positional-free named ports (.A/.B/.C for
   inputs in fanin order, .Y for the output), which is how mapped netlists
   hand off to downstream P&R tools. Identifiers that are not valid Verilog
   names are escaped with the standard backslash form. *)

let needs_escape name =
  let ok_first c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let ok c = ok_first c || (c >= '0' && c <= '9') || c = '$' in
  String.length name = 0
  || (not (ok_first name.[0]))
  || not (String.for_all ok name)

let ident name = if needs_escape name then "\\" ^ name ^ " " else name

let port_name k =
  (* A, B, C, D ... for fanins in order *)
  String.make 1 (Char.chr (Char.code 'A' + k))

let to_verilog ?(module_name = "top") circuit =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let inputs = Circuit.inputs circuit in
  let outputs = Circuit.outputs circuit in
  let n name = ident (Circuit.node_name circuit name) in
  add "module %s (%s);\n" (ident module_name)
    (String.concat ", " (List.map n inputs @ List.map n outputs));
  List.iter (fun i -> add "  input %s;\n" (n i)) inputs;
  List.iter (fun o -> add "  output %s;\n" (n o)) outputs;
  (* internal wires: gate outputs that are not primary outputs *)
  List.iter
    (fun id -> if not (Circuit.is_output circuit id) then add "  wire %s;\n" (n id))
    (Circuit.gates circuit);
  List.iter
    (fun id ->
      match Circuit.cell circuit id with
      | None -> ()
      | Some cell ->
          let fanins = Circuit.fanins circuit id in
          let ports =
            Array.to_list
              (Array.mapi (fun k fi -> Printf.sprintf ".%s(%s)" (port_name k) (n fi))
                 fanins)
            @ [ Printf.sprintf ".Y(%s)" (n id) ]
          in
          add "  %s %s (%s);\n" (Cells.Cell.name cell)
            (ident ("u_" ^ Circuit.node_name circuit id))
            (String.concat ", " ports))
    (Circuit.topological circuit);
  add "endmodule\n";
  Buffer.contents buf

let save ?module_name circuit ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_verilog ?module_name circuit))

(** ISCAS-85 [.bench] reader/writer. Reading technology-maps primitives onto
    minimum-size library cells (wide gates become balanced trees); writing
    emits a superset dialect this reader accepts back. *)

exception Parse_error of { line : int; message : string }

val of_string : ?name:string -> lib:Cells.Library.t -> string -> Circuit.t
(** Parse and map; raises {!Parse_error} on malformed text, undefined
    references, or combinational cycles. *)

val load : ?name:string -> lib:Cells.Library.t -> path:string -> unit -> Circuit.t

val to_string : Circuit.t -> string
val save : Circuit.t -> path:string -> unit

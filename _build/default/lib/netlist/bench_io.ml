(* ISCAS-85 [.bench] reader and writer.

   Reading performs the technology-mapping step the paper delegates to Design
   Compiler: bench primitives become minimum-size library cells, and gates
   wider than the library's arity cap are decomposed into balanced trees.
   Definitions may appear in any order; we instantiate in dependency order.

   Writing emits a superset dialect: every cell function prints under its
   library name (AOI21/OAI21/MUX2 included), which this reader accepts back,
   so write/read round-trips preserve structure. *)

exception Parse_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

type def = { op : string; args : string list; line : int }

type parsed = {
  inputs : (string * int) list; (* name, line *)
  outputs : (string * int) list;
  defs : (string, def) Hashtbl.t;
  def_order : string list;
}

let is_blank s = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\r') s

let parse_line ~line ~acc text =
  let text = String.trim text in
  if text = "" || text.[0] = '#' then acc
  else
    let lparen =
      match String.index_opt text '(' with
      | Some i -> i
      | None -> fail line "expected '(' in %S" text
    in
    let rparen =
      match String.rindex_opt text ')' with
      | Some i when i > lparen -> i
      | _ -> fail line "expected ')' in %S" text
    in
    let args_text = String.sub text (lparen + 1) (rparen - lparen - 1) in
    let args =
      String.split_on_char ',' args_text
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    match String.index_opt text '=' with
    | None -> (
        let keyword = String.trim (String.sub text 0 lparen) in
        match (String.uppercase_ascii keyword, args) with
        | "INPUT", [ name ] -> { acc with inputs = (name, line) :: acc.inputs }
        | "OUTPUT", [ name ] -> { acc with outputs = (name, line) :: acc.outputs }
        | _ -> fail line "expected INPUT(x) or OUTPUT(x), got %S" text)
    | Some eq ->
        let name = String.trim (String.sub text 0 eq) in
        let op =
          String.uppercase_ascii (String.trim (String.sub text (eq + 1) (lparen - eq - 1)))
        in
        if name = "" then fail line "missing gate name in %S" text;
        if args = [] then fail line "gate %S has no operands" name;
        if Hashtbl.mem acc.defs name then fail line "duplicate definition of %S" name;
        Hashtbl.add acc.defs name { op; args; line };
        { acc with def_order = name :: acc.def_order }

let parse_text text =
  let acc =
    { inputs = []; outputs = []; defs = Hashtbl.create 997; def_order = [] }
  in
  let lines = String.split_on_char '\n' text in
  let acc, _ =
    List.fold_left
      (fun (acc, n) l ->
        ((if is_blank l then acc else parse_line ~line:n ~acc l), n + 1))
      (acc, 1) lines
  in
  {
    acc with
    inputs = List.rev acc.inputs;
    outputs = List.rev acc.outputs;
    def_order = List.rev acc.def_order;
  }

let instantiate_gate builder ~name def ids =
  let module F = Cells.Fn in
  match (def.op, List.length ids) with
  | ("NOT" | "INV"), 1 -> Build.not_ ~name builder (List.hd ids)
  | ("BUF" | "BUFF"), 1 -> Build.buf ~name builder (List.hd ids)
  | ("AND" | "AND2" | "AND3" | "AND4"), n when n >= 2 -> Build.and_ ~name builder ids
  | ("OR" | "OR2" | "OR3" | "OR4"), n when n >= 2 -> Build.or_ ~name builder ids
  | ("NAND" | "NAND2" | "NAND3" | "NAND4"), n when n >= 2 -> Build.nand ~name builder ids
  | ("NOR" | "NOR2" | "NOR3" | "NOR4"), n when n >= 2 -> Build.nor ~name builder ids
  | ("XOR" | "XOR2"), n when n >= 2 -> Build.xor ~name builder ids
  | ("XNOR" | "XNOR2"), 2 ->
      (match ids with
      | [ a; b ] -> Build.xnor2 ~name builder a b
      | _ -> assert false)
  | ("XNOR" | "XNOR2"), n when n > 2 -> Build.not_ ~name builder (Build.xor builder ids)
  | "AOI21", 3 ->
      (match ids with [ a; b; c ] -> Build.aoi21 ~name builder a b c | _ -> assert false)
  | "OAI21", 3 ->
      (match ids with [ a; b; c ] -> Build.oai21 ~name builder a b c | _ -> assert false)
  | "MUX2", 3 ->
      (match ids with
      | [ a; b; s ] -> Build.mux2 ~name builder ~sel:s ~a ~b
      | _ -> assert false)
  | op, n -> fail def.line "unsupported gate %s/%d for %S" op n name

let map_to_circuit ?(name = "bench") ~lib parsed =
  let builder = Build.create ~lib ~name () in
  List.iter
    (fun (input_name, line) ->
      if Hashtbl.mem parsed.defs input_name then
        fail line "node %S is both INPUT and a gate" input_name;
      ignore (Build.input builder ~name:input_name))
    parsed.inputs;
  let circuit = Build.circuit builder in
  (* Dependency-ordered instantiation (definitions may be out of order). *)
  let visiting = Hashtbl.create 97 in
  let rec resolve ref_name ~line =
    match Circuit.find circuit ~name:ref_name with
    | Some id -> id
    | None -> (
        match Hashtbl.find_opt parsed.defs ref_name with
        | None -> fail line "reference to undefined signal %S" ref_name
        | Some def ->
            if Hashtbl.mem visiting ref_name then
              fail def.line "combinational cycle through %S" ref_name;
            Hashtbl.add visiting ref_name ();
            let ids = List.map (fun a -> resolve a ~line:def.line) def.args in
            Hashtbl.remove visiting ref_name;
            instantiate_gate builder ~name:ref_name def ids)
  in
  List.iter (fun n -> ignore (resolve n ~line:0)) parsed.def_order;
  List.iter
    (fun (out_name, line) ->
      Circuit.mark_output circuit (resolve out_name ~line))
    parsed.outputs;
  Build.finish builder

let of_string ?name ~lib text = map_to_circuit ?name ~lib (parse_text text)

let load ?name ~lib ~path () =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string ?name ~lib (In_channel.input_all ic))

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s — emitted by statsize\n" (Circuit.name t));
  List.iter
    (fun id ->
      Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (Circuit.node_name t id)))
    (Circuit.inputs t);
  List.iter
    (fun id ->
      Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" (Circuit.node_name t id)))
    (Circuit.outputs t);
  List.iter
    (fun id ->
      match Circuit.cell t id with
      | None -> ()
      | Some cell ->
          let args =
            Circuit.fanins t id |> Array.to_list
            |> List.map (Circuit.node_name t)
            |> String.concat ", "
          in
          Buffer.add_string buf
            (Printf.sprintf "%s = %s(%s)\n" (Circuit.node_name t id)
               (Cells.Fn.name (Cells.Cell.fn cell))
               args))
    (Circuit.topological t);
  Buffer.contents buf

let save t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

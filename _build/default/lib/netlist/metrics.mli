(** Descriptive circuit metrics for reports. *)

type t = {
  name : string;
  input_count : int;
  output_count : int;
  gate_count : int;
  depth : int;
  area : float;
  max_fanout : int;
  avg_fanin : float;
  fn_histogram : (string * int) list;
}

val compute : Circuit.t -> t
val pp : t Fmt.t

(** Structural gate-level Verilog writer (named ports .A/.B/…/.Y; escaped
    identifiers where needed). *)

val to_verilog : ?module_name:string -> Circuit.t -> string
val save : ?module_name:string -> Circuit.t -> path:string -> unit

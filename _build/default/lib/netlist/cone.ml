(* Transitive fanin/fanout cones and the bounded subcircuit extraction of the
   paper's §4.5: for every gate evaluated for resizing, StatisticalGreedy
   works on the gates within [depth] levels of transitive fanin and fanout
   (two, by default) around the candidate. *)

module Id_set = Set.Make (Int)

let rec grow_fanin t frontier ~depth acc =
  if depth = 0 || Id_set.is_empty frontier then acc
  else
    let next =
      Id_set.fold
        (fun id acc_next ->
          Array.fold_left
            (fun s fi -> if Circuit.is_input t fi then s else Id_set.add fi s)
            acc_next (Circuit.fanins t id))
        frontier Id_set.empty
    in
    let fresh = Id_set.diff next acc in
    grow_fanin t fresh ~depth:(depth - 1) (Id_set.union acc fresh)

let rec grow_fanout t frontier ~depth acc =
  if depth = 0 || Id_set.is_empty frontier then acc
  else
    let next =
      Id_set.fold
        (fun id acc_next ->
          List.fold_left (fun s fo -> Id_set.add fo s) acc_next
            (Circuit.fanouts t id))
        frontier Id_set.empty
    in
    let fresh = Id_set.diff next acc in
    grow_fanout t fresh ~depth:(depth - 1) (Id_set.union acc fresh)

let transitive_fanin t id ~depth =
  Id_set.elements (grow_fanin t (Id_set.singleton id) ~depth Id_set.empty)

let transitive_fanout t id ~depth =
  Id_set.elements (grow_fanout t (Id_set.singleton id) ~depth Id_set.empty)

(* Full-depth input cone of an output, primary inputs included; used for
   cone-of-influence statistics. *)
let input_cone t id =
  let seen = Hashtbl.create 64 in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      Array.iter visit (Circuit.fanins t id)
    end
  in
  visit id;
  List.sort Stdlib.compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])

type subcircuit = {
  pivot : Circuit.id;
  members : Circuit.id array; (* gates in the window, topologically ordered *)
  boundary_inputs : Circuit.id list; (* nodes feeding the window from outside *)
  window_outputs : Circuit.id list; (* members observed outside the window *)
}

let member_set sub = Id_set.of_list (Array.to_list sub.members)

let extract t ~pivot ~depth =
  if Circuit.is_input t pivot then
    invalid_arg "Cone.extract: pivot is a primary input";
  let self = Id_set.singleton pivot in
  let tfi = grow_fanin t self ~depth Id_set.empty in
  let tfo = grow_fanout t self ~depth Id_set.empty in
  let members_set = Id_set.union self (Id_set.union tfi tfo) in
  let members =
    Array.of_list (Id_set.elements members_set) (* ids ascend = topological *)
  in
  let boundary =
    Array.fold_left
      (fun acc id ->
        Array.fold_left
          (fun acc fi ->
            if Id_set.mem fi members_set then acc else Id_set.add fi acc)
          acc (Circuit.fanins t id))
      Id_set.empty members
  in
  let window_outputs =
    Array.to_list members
    |> List.filter (fun id ->
           Circuit.is_output t id
           || List.exists
                (fun fo -> not (Id_set.mem fo members_set))
                (Circuit.fanouts t id))
  in
  (* A window whose pivot drives nothing outside and is not an output can
     still be scored: fall back to observing the deepest members. *)
  let window_outputs =
    match window_outputs with
    | [] -> [ members.(Array.length members - 1) ]
    | os -> os
  in
  { pivot; members; boundary_inputs = Id_set.elements boundary; window_outputs }

let pp_subcircuit t ppf sub =
  Fmt.pf ppf "@[window(%s): %d gates, %d boundary ins, %d outs@]"
    (Circuit.node_name t sub.pivot)
    (Array.length sub.members)
    (List.length sub.boundary_inputs)
    (List.length sub.window_outputs)

(** Fig. 1 reproduction: circuit output delay pdf at three optimization
    points, with Monte-Carlo cross-checks and yield at a fixed period. *)

type curve = {
  label : string;
  alpha : float option;
  mean : float;
  sigma : float;
  pdf_points : (float * float) list;
  mc_mean : float;
  mc_sigma : float;
}

type result = {
  circuit_name : string;
  curves : curve list;
  period : float;
  yields_at_period : (string * float) list;
}

val run :
  ?circuit_name:string -> ?alphas:float * float -> lib:Cells.Library.t -> unit ->
  result

val pp : result Fmt.t
val to_series : result -> (string * (float * float) list) list

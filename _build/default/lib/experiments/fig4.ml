(* Fig. 4 — the normalized mean / sigma trade-off plot for c432: sweep the
   weight alpha and plot (mu / mu_original, sigma / mu_original). The paper
   shows sigma falling as alpha grows from 3 to 9, with the mean drifting
   within a few percent, and saturation at high alpha (the unsystematic
   floor cannot be optimized away). *)

type point = {
  alpha : float;
  normalized_mean : float; (* mu / mu_original *)
  normalized_sigma : float; (* sigma / mu_original *)
  area_change_pct : float;
}

type result = {
  circuit_name : string;
  original_sigma_over_mean : float;
  points : point list; (* ascending alpha; alpha = 0 is the original *)
}

let default_alphas = [ 3.0; 6.0; 9.0 ]

let run ?(circuit_name = "c432") ?(alphas = default_alphas) ~lib () =
  let entry =
    match Benchgen.Iscas_like.find circuit_name with
    | Some e -> e
    | None -> invalid_arg ("Fig4.run: unknown circuit " ^ circuit_name)
  in
  let baseline = Pipeline.prepare ~lib (fun () -> entry.build ~lib) in
  let mu0 = baseline.Pipeline.moments.Numerics.Clark.mean in
  let origin =
    {
      alpha = 0.0;
      normalized_mean = 1.0;
      normalized_sigma = Numerics.Clark.sigma baseline.Pipeline.moments /. mu0;
      area_change_pct = 0.0;
    }
  in
  let points =
    List.map
      (fun alpha ->
        let r = Pipeline.run_alpha ~lib baseline ~alpha in
        {
          alpha;
          normalized_mean = r.Pipeline.final_moments.Numerics.Clark.mean /. mu0;
          normalized_sigma =
            Numerics.Clark.sigma r.Pipeline.final_moments /. mu0;
          area_change_pct = r.Pipeline.area_change_pct;
        })
      alphas
  in
  {
    circuit_name;
    original_sigma_over_mean = origin.normalized_sigma;
    points = origin :: points;
  }

let pp ppf r =
  Fmt.pf ppf "Fig.4 — normalized mean/sigma plot for %s@." r.circuit_name;
  Fmt.pf ppf "  %-7s %12s %13s %8s@." "alpha" "mu/mu0" "sigma/mu0" "darea%";
  List.iter
    (fun p ->
      Fmt.pf ppf "  %-7g %12.4f %13.4f %+8.1f@." p.alpha p.normalized_mean
        p.normalized_sigma p.area_change_pct)
    r.points

(* §4.3 approximation study:

   1. the quadratic erf is accurate to "two decimal places";
   2. the fast Clark max (quadratic erf + 2.6 cutoff) stays close to the
      exact Clark moments and to Monte Carlo over random operand pairs;
   3. the cutoff conditions (5)/(6) fire "in the vast majority of cases"
      during real circuit propagation. *)

type erf_report = { max_abs_error : float }

let erf_study () = { max_abs_error = Numerics.Erf.max_quadratic_error () }

type max_report = {
  cases : int;
  worst_mean_err_vs_exact : float; (* fast vs exact, relative to exact mean *)
  worst_sigma_err_vs_exact : float; (* relative to exact sigma *)
  worst_mean_err_exact_vs_mc : float;
  worst_sigma_err_exact_vs_mc : float;
  cutoff_fraction : float; (* how often (5)/(6) resolved the fast max *)
}

let mc_max rng ~trials (a : Numerics.Clark.moments) (b : Numerics.Clark.moments) =
  let stats = Numerics.Stats.create () in
  for _ = 1 to trials do
    let xa =
      Numerics.Rng.gaussian_scaled rng ~mean:a.Numerics.Clark.mean
        ~sigma:(Numerics.Clark.sigma a)
    and xb =
      Numerics.Rng.gaussian_scaled rng ~mean:b.Numerics.Clark.mean
        ~sigma:(Numerics.Clark.sigma b)
    in
    Numerics.Stats.add stats (Float.max xa xb)
  done;
  Numerics.Clark.moments ~mean:(Numerics.Stats.mean stats)
    ~var:(Numerics.Stats.variance stats)

let max_study ?(cases = 500) ?(trials = 20000) ?(seed = 42) () =
  let rng = Numerics.Rng.create ~seed in
  let cutoff_hits = ref 0 in
  let worst = ref (0.0, 0.0, 0.0, 0.0) in
  for _ = 1 to cases do
    let mu_a = Numerics.Rng.float_range rng ~lo:50.0 ~hi:500.0 in
    let mu_b = mu_a +. Numerics.Rng.float_range rng ~lo:(-80.0) ~hi:80.0 in
    let sd_a = Numerics.Rng.float_range rng ~lo:2.0 ~hi:40.0 in
    let sd_b = Numerics.Rng.float_range rng ~lo:2.0 ~hi:40.0 in
    let a = Numerics.Clark.moments ~mean:mu_a ~var:(sd_a *. sd_a) in
    let b = Numerics.Clark.moments ~mean:mu_b ~var:(sd_b *. sd_b) in
    let exact = Numerics.Clark.max_exact a b in
    let fast, resolution = Numerics.Clark.max_fast_resolved a b in
    (match resolution with
    | Numerics.Clark.Left_dominates | Numerics.Clark.Right_dominates ->
        incr cutoff_hits
    | Numerics.Clark.Blended -> ());
    let mc = mc_max rng ~trials a b in
    let rel x ref_v = Float.abs (x -. ref_v) /. Float.max (Float.abs ref_v) 1e-9 in
    let m1, s1, m2, s2 = !worst in
    worst :=
      ( Float.max m1
          (rel fast.Numerics.Clark.mean exact.Numerics.Clark.mean),
        Float.max s1
          (rel (Numerics.Clark.sigma fast) (Numerics.Clark.sigma exact)),
        Float.max m2 (rel exact.Numerics.Clark.mean mc.Numerics.Clark.mean),
        Float.max s2
          (rel (Numerics.Clark.sigma exact) (Numerics.Clark.sigma mc)) )
  done;
  let m1, s1, m2, s2 = !worst in
  {
    cases;
    worst_mean_err_vs_exact = m1;
    worst_sigma_err_vs_exact = s1;
    worst_mean_err_exact_vs_mc = m2;
    worst_sigma_err_exact_vs_mc = s2;
    cutoff_fraction = float_of_int !cutoff_hits /. float_of_int cases;
  }

(* Cutoff-hit fraction during real circuit propagation, per suite circuit. *)
let cutoff_study ?(names = [ "alu1"; "c432"; "c499"; "c880" ]) ~lib () =
  List.filter_map
    (fun name ->
      match Benchgen.Iscas_like.find name with
      | None -> None
      | Some entry ->
          let c = entry.Benchgen.Iscas_like.build ~lib in
          let _ = Core.Initial_sizing.apply ~lib c in
          let stats = Ssta.Fassta.make_stats () in
          let _ = Ssta.Fassta.run ~stats c in
          Some (name, Ssta.Fassta.cutoff_fraction stats))
    names

let pp_erf ppf r =
  Fmt.pf ppf "quadratic erf: max |error| = %.4f (paper: two decimal places)@."
    r.max_abs_error

let pp_max ppf r =
  Fmt.pf ppf
    "@[<v>fast Clark max over %d random pairs:@ vs exact Clark: worst dmu %.2f%%, \
     worst dsigma %.2f%%@ exact Clark vs MC: worst dmu %.2f%%, worst dsigma \
     %.2f%%@ cutoff (5)/(6) resolved %.0f%% of cases@]@."
    r.cases
    (100.0 *. r.worst_mean_err_vs_exact)
    (100.0 *. r.worst_sigma_err_vs_exact)
    (100.0 *. r.worst_mean_err_exact_vs_mc)
    (100.0 *. r.worst_sigma_err_exact_vs_mc)
    (100.0 *. r.cutoff_fraction)

let pp_cutoffs ppf rows =
  Fmt.pf ppf "cutoff-hit fraction during whole-circuit FASSTA:@.";
  List.iter (fun (n, f) -> Fmt.pf ppf "  %-8s %5.1f%%@." n (100.0 *. f)) rows

(** Fig. 3 reproduction: WNSS tracing on the paper's 6-gate example with
    the figure's exact (μ, σ) arrival values. *)

type node = X | G1 | G2 | G3 | G4 | G5

val name : node -> string
val arrival : node -> Numerics.Clark.moments
val contributions : node -> (node * Numerics.Clark.moments) list

type result = {
  path : node list;
  decisions : (node * node * string) list;
}

val trace : ?config:Core.Wnss.config -> unit -> result
val pp : result Fmt.t

(* Fig. 1 — circuit output delay pdf at three optimization points:
   "Original" (mean-delay optimized), "Optimization 1" (moderate alpha) and
   "Optimization 2" (aggressive alpha). The statistical sizing narrows the
   distribution at a small mean penalty; the yield at a fixed period T
   rises. FULLSSTA supplies the pdfs; Monte Carlo cross-checks them. *)

type curve = {
  label : string;
  alpha : float option; (* None for the mean-optimized original *)
  mean : float;
  sigma : float;
  pdf_points : (float * float) list; (* (delay, probability mass) *)
  mc_mean : float;
  mc_sigma : float;
}

type result = {
  circuit_name : string;
  curves : curve list;
  period : float; (* the "T" marker: baseline mean + 1 sigma *)
  yields_at_period : (string * float) list;
}

let curve_of_circuit ~label ~alpha circuit =
  let full = Ssta.Fullssta.run circuit in
  let rv = Ssta.Fullssta.output_rv full in
  let m = Numerics.Discrete_pdf.to_moments rv in
  let mc =
    Ssta.Monte_carlo.run
      ~config:{ Ssta.Monte_carlo.default_config with trials = 1500 }
      circuit
  in
  let stats = Ssta.Monte_carlo.circuit_stats mc in
  {
    label;
    alpha;
    mean = m.Numerics.Clark.mean;
    sigma = Numerics.Clark.sigma m;
    pdf_points = Numerics.Discrete_pdf.points rv;
    mc_mean = Numerics.Stats.mean stats;
    mc_sigma = Numerics.Stats.std stats;
  }

let run ?(circuit_name = "c432") ?(alphas = (3.0, 9.0)) ~lib () =
  let entry =
    match Benchgen.Iscas_like.find circuit_name with
    | Some e -> e
    | None -> invalid_arg ("Fig1.run: unknown circuit " ^ circuit_name)
  in
  let baseline = Pipeline.prepare ~lib (fun () -> entry.build ~lib) in
  let a1, a2 = alphas in
  let run1 = Pipeline.run_alpha ~lib baseline ~alpha:a1 in
  let run2 = Pipeline.run_alpha ~lib baseline ~alpha:a2 in
  let curves =
    [
      curve_of_circuit ~label:"original" ~alpha:None baseline.Pipeline.circuit;
      curve_of_circuit
        ~label:(Printf.sprintf "optimization1 (alpha=%g)" a1)
        ~alpha:(Some a1) run1.Pipeline.circuit;
      curve_of_circuit
        ~label:(Printf.sprintf "optimization2 (alpha=%g)" a2)
        ~alpha:(Some a2) run2.Pipeline.circuit;
    ]
  in
  let period =
    baseline.Pipeline.moments.Numerics.Clark.mean
    +. Numerics.Clark.sigma baseline.Pipeline.moments
  in
  let yields =
    List.map
      (fun c ->
        let full_yield =
          (* P(delay <= period) under N(mean, sigma) *)
          Numerics.Normal.cdf_at ~mean:c.mean ~sigma:c.sigma period
        in
        (c.label, full_yield))
      curves
  in
  { circuit_name; curves; period; yields_at_period = yields }

let pp ppf r =
  Fmt.pf ppf "Fig.1 — %s output delay pdf at three optimization points@."
    r.circuit_name;
  List.iter
    (fun c ->
      Fmt.pf ppf "  %-28s mu=%8.2f sigma=%6.2f  (MC: mu=%8.2f sigma=%6.2f)@."
        c.label c.mean c.sigma c.mc_mean c.mc_sigma)
    r.curves;
  Fmt.pf ppf "  yield at T=%.1f ps:@." r.period;
  List.iter
    (fun (label, y) -> Fmt.pf ppf "    %-28s %5.1f%%@." label (100.0 *. y))
    r.yields_at_period

(* Gnuplot-ready series: label, then (x, mass) lines. *)
let to_series r =
  List.map (fun c -> (c.label, c.pdf_points)) r.curves

(* Ablation study over the sizer's design choices (DESIGN.md §7):

   - commit mode: the paper's literal batch commit vs sequential commit;
   - path source: the paper's single dominant WNSS path vs the per-output
     forest vs the cutoff-bounded critical cone;
   - evaluation: the paper's 2-level window with frozen boundary vs global
     incremental scoring.

   Each variant starts from the same mean-optimized baseline and reports the
   sigma reduction, area increase and runtime it achieves at one alpha. *)

type variant = { label : string; config : Core.Sizer.config }

let variants ~alpha =
  let base =
    { Core.Sizer.default_config with objective = Core.Objective.create ~alpha }
  in
  [
    { label = "default (cone, sequential, global)"; config = base };
    {
      label = "paper-literal (dominant path, batch, windowed)";
      config =
        {
          base with
          commit_mode = Core.Sizer.Batch;
          path_source = Core.Sizer.Dominant_path;
          evaluation = Core.Window.Windowed;
        };
    };
    {
      label = "dominant path only";
      config = { base with path_source = Core.Sizer.Dominant_path };
    };
    {
      label = "per-output forest";
      config = { base with path_source = Core.Sizer.All_output_paths };
    };
    { label = "batch commit"; config = { base with commit_mode = Core.Sizer.Batch } };
    {
      label = "windowed evaluation";
      config = { base with evaluation = Core.Window.Windowed };
    };
  ]

type row = {
  label : string;
  sigma_change_pct : float;
  mean_change_pct : float;
  area_change_pct : float;
  iterations : int;
  runtime_s : float;
}

let run ?(circuit_name = "c432") ?(alpha = 9.0) ~lib () =
  let entry =
    match Benchgen.Iscas_like.find circuit_name with
    | Some e -> e
    | None -> invalid_arg ("Ablation.run: unknown circuit " ^ circuit_name)
  in
  let baseline = Pipeline.prepare ~lib (fun () -> entry.build ~lib) in
  List.map
    (fun v ->
      let r =
        Pipeline.run_alpha ~recover:false ~config:v.config ~lib baseline ~alpha
      in
      {
        label = v.label;
        sigma_change_pct = r.Pipeline.sigma_change_pct;
        mean_change_pct = r.Pipeline.mean_change_pct;
        area_change_pct = r.Pipeline.area_change_pct;
        iterations = r.Pipeline.iterations;
        runtime_s = r.Pipeline.runtime_s;
      })
    (variants ~alpha)

let pp ppf rows =
  Fmt.pf ppf "ablation (no area recovery):@.";
  Fmt.pf ppf "  %-48s %8s %8s %8s %6s %8s@." "variant" "dsig%" "dmu%" "darea%"
    "iters" "time(s)";
  List.iter
    (fun r ->
      Fmt.pf ppf "  %-48s %+8.1f %+8.1f %+8.1f %6d %8.1f@." r.label
        r.sigma_change_pct r.mean_change_pct r.area_change_pct r.iterations
        r.runtime_s)
    rows

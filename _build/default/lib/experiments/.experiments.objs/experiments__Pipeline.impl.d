lib/experiments/pipeline.ml: Core List Netlist Numerics Ssta Sys

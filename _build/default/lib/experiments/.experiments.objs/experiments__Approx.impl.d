lib/experiments/approx.ml: Benchgen Core Float Fmt List Numerics Ssta

lib/experiments/fig3.mli: Core Fmt Numerics

lib/experiments/fig3.ml: Core Float Fmt List Numerics

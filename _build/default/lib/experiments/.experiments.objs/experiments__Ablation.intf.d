lib/experiments/ablation.mli: Cells Fmt

lib/experiments/fig1.ml: Benchgen Fmt List Numerics Pipeline Printf Ssta

lib/experiments/approx.mli: Cells Fmt

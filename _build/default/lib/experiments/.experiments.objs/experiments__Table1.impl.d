lib/experiments/table1.ml: Benchgen Buffer Float Fmt Fun List Pipeline Printf

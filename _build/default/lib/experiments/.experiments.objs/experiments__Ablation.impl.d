lib/experiments/ablation.ml: Benchgen Core Fmt List Pipeline

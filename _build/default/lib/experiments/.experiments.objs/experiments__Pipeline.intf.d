lib/experiments/pipeline.mli: Cells Core Netlist Numerics

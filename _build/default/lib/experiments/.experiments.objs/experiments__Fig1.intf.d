lib/experiments/fig1.mli: Cells Fmt

lib/experiments/table1.mli: Benchgen Cells Core Fmt Pipeline

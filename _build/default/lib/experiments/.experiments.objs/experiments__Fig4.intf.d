lib/experiments/fig4.mli: Cells Fmt

lib/experiments/fig4.ml: Benchgen Fmt List Numerics Pipeline

(* Fig. 3 — tracing the WNSS path on the paper's 6-gate example. Arrival
   moments (mu, sigma) are exactly the figure's numbers. The point of the
   example: at the ambiguous node the dominant input is NOT simply the one
   with the higher mean (or the higher sigma) — the variance sensitivity
   decides, and it picks the lower-mean, higher-sigma branch.

   Topology (output X at the right, as in the figure):

       g3 (320, 27) --\
                       >-- g2 (392, 35) --\
       g4 (310, 45) --/                    >-- X
                       g1 (357, 32) ------/
       g5 (190, 41) -- g1
*)

type node = X | G1 | G2 | G3 | G4 | G5

let name = function
  | X -> "X"
  | G1 -> "g1"
  | G2 -> "g2"
  | G3 -> "g3"
  | G4 -> "g4"
  | G5 -> "g5"

let moments ~mu ~sigma = Numerics.Clark.moments ~mean:mu ~var:(sigma *. sigma)

(* Arrival-time moments straight from the figure. *)
let arrival = function
  | X -> moments ~mu:410.0 ~sigma:38.0 (* the max at X; value not printed *)
  | G1 -> moments ~mu:357.0 ~sigma:32.0
  | G2 -> moments ~mu:392.0 ~sigma:35.0
  | G3 -> moments ~mu:320.0 ~sigma:27.0
  | G4 -> moments ~mu:310.0 ~sigma:45.0
  | G5 -> moments ~mu:190.0 ~sigma:41.0

let contributions = function
  | X -> [ (G1, arrival G1); (G2, arrival G2) ]
  | G2 -> [ (G3, arrival G3); (G4, arrival G4) ]
  | G1 -> [ (G5, arrival G5) ]
  | G3 | G4 | G5 -> []

(* Integer encoding for the generic tracer. *)
let all = [ X; G1; G2; G3; G4; G5 ]
let to_id n = match n with X -> 0 | G1 -> 1 | G2 -> 2 | G3 -> 3 | G4 -> 4 | G5 -> 5
let of_id i = List.nth all i

type result = {
  path : node list; (* output X first *)
  decisions : (node * node * string) list; (* at node, picked, why *)
}

let trace ?(config = Core.Wnss.config ~coupling:0.6 ()) () =
  let decisions = ref [] in
  let contributions_by_id id =
    let node = of_id id in
    let inputs = contributions node in
    (match inputs with
    | _ :: _ :: _ ->
        let picked, _ = Core.Wnss.pick_dominant config
            (List.map (fun (n, m) -> (n, m)) inputs)
        in
        let why =
          let ms = List.map snd inputs in
          let spread =
            match ms with
            | [ a; b ] -> Numerics.Clark.spread a b
            | _ -> 0.0
          in
          let dmu =
            match ms with
            | [ a; b ] ->
                Float.abs (a.Numerics.Clark.mean -. b.Numerics.Clark.mean)
            | _ -> 0.0
          in
          if spread > 0.0 && dmu /. spread >= Numerics.Clark.cutoff then
            "cutoff (5)/(6): higher mean dominates"
          else "variance sensitivity (finite difference)"
        in
        decisions := (node, picked, why) :: !decisions
    | _ -> ());
    List.map (fun (n, m) -> (to_id n, m)) inputs
  in
  let path_ids =
    Core.Wnss.trace_generic config ~contributions:contributions_by_id
      ~roots:[ (to_id X, arrival X) ]
  in
  { path = List.map of_id path_ids; decisions = List.rev !decisions }

let pp ppf r =
  Fmt.pf ppf "Fig.3 — WNSS trace on the paper's 6-gate example@.";
  Fmt.pf ppf "  path: %a@."
    (Fmt.list ~sep:(Fmt.any " -> ") Fmt.string)
    (List.map name r.path);
  List.iter
    (fun (at, picked, why) ->
      Fmt.pf ppf "  at %-3s picked %-3s — %s@." (name at) (name picked) why)
    r.decisions

(** Fig. 4 reproduction: normalized (μ/μ₀, σ/μ₀) sweep over α for one
    circuit (default c432, α ∈ {3, 6, 9} plus the α = 0 origin). *)

type point = {
  alpha : float;
  normalized_mean : float;
  normalized_sigma : float;
  area_change_pct : float;
}

type result = {
  circuit_name : string;
  original_sigma_over_mean : float;
  points : point list;
}

val default_alphas : float list

val run :
  ?circuit_name:string -> ?alphas:float list -> lib:Cells.Library.t -> unit ->
  result

val pp : result Fmt.t

(** Ablation study over the sizer's design choices (commit mode, path
    source, evaluation mode), all from one shared baseline. *)

type row = {
  label : string;
  sigma_change_pct : float;
  mean_change_pct : float;
  area_change_pct : float;
  iterations : int;
  runtime_s : float;
}

val run :
  ?circuit_name:string -> ?alpha:float -> lib:Cells.Library.t -> unit -> row list

val pp : row list Fmt.t

(** §4.3 approximation study: quadratic-erf accuracy, fast-Clark-max
    accuracy vs exact Clark and Monte Carlo, and the cutoff hit rate. *)

type erf_report = { max_abs_error : float }

val erf_study : unit -> erf_report

type max_report = {
  cases : int;
  worst_mean_err_vs_exact : float;
  worst_sigma_err_vs_exact : float;
  worst_mean_err_exact_vs_mc : float;
  worst_sigma_err_exact_vs_mc : float;
  cutoff_fraction : float;
}

val max_study : ?cases:int -> ?trials:int -> ?seed:int -> unit -> max_report

val cutoff_study :
  ?names:string list -> lib:Cells.Library.t -> unit -> (string * float) list
(** Cutoff-hit fraction during whole-circuit FASSTA, per suite circuit. *)

val pp_erf : erf_report Fmt.t
val pp_max : max_report Fmt.t
val pp_cutoffs : (string * float) list Fmt.t

lib/core/criticality.mli: Fmt Netlist Sta Variation

lib/core/sizer.mli: Cells Fmt Netlist Numerics Objective Sta Variation Window

lib/core/window.ml: Array Cells Float Fun Hashtbl Initial_sizing List Netlist Numerics Objective Ssta Sta Variation

lib/core/initial_sizing.ml: Array Cells List Netlist

lib/core/area_recovery.mli: Cells Fmt Netlist Objective Sta Variation

lib/core/wnss.mli: Netlist Numerics Ssta Variation

lib/core/area_recovery.ml: Array Cells Float Fmt List Netlist Numerics Objective Ssta Sta Variation

lib/core/sizer.ml: Array Cells Float Fmt List Logs Netlist Numerics Objective Ssta Sta Sys Variation Window Wnss

lib/core/criticality.ml: Array Float Fmt List Netlist Numerics Ssta Sta Variation

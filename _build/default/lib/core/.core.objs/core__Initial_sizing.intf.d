lib/core/initial_sizing.mli: Cells Netlist

lib/core/yield_driven.mli: Cells Fmt Netlist Sizer

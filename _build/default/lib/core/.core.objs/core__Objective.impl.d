lib/core/objective.ml: Float Fmt List Numerics Ssta

lib/core/window.mli: Cells Netlist Objective Ssta Variation

lib/core/yield_driven.ml: Area_recovery Fmt List Netlist Numerics Objective Sizer Ssta

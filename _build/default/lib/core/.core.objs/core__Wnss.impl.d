lib/core/wnss.ml: Array Float Hashtbl List Netlist Numerics Ssta Stdlib Variation

lib/core/objective.mli: Fmt Netlist Numerics Ssta

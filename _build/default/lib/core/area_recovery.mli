(** Area recovery (constrained mode, paper §2.1): downsize gates greedily
    while the statistical objective stays within a tolerance budget. *)

type config = {
  objective : Objective.t;
  model : Variation.Model.t;
  tolerance : float;
  samples : int;
  electrical : Sta.Electrical.config;
}

val default_config : config
(** α = 3, 0.3%% objective tolerance. *)

type result = {
  downsized : int;
  area_before : float;
  area_after : float;
  cost_before : float;
  cost_after : float;
}

val recover :
  ?config:config -> lib:Cells.Library.t -> Netlist.Circuit.t -> result
(** Mutates the circuit in place. *)

val pp_result : result Fmt.t

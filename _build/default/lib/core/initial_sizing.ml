(* Load-driven initial sizing.

   The paper's flow starts from netlists synthesized by Design Compiler,
   which assigns drive strengths roughly proportional to the load each gate
   sees — not from all-minimum sizes. This pass emulates that: every gate
   gets the smallest drive whose per-strength load stays under a target
   (an effective-fanout rule). Sizes change loads, so the sweep runs
   output-side first and repeats until it settles. *)

type config = {
  fanout_target : float; (* target electrical fanout h = load / input_cap *)
  max_passes : int;
}

let default_config = { fanout_target = 4.0; max_passes = 6 }

(* Smallest drive whose electrical fanout (output load over the cell's own
   input capacitance) stays at or under the target — the classical
   logical-effort gain rule, self-normalizing across cap-hungry functions
   like XOR. *)
let pick_cell lib ~fn ~load ~target =
  let cells = Cells.Library.sizes_of_fn lib fn in
  let rec search i =
    if i >= Array.length cells then cells.(Array.length cells - 1)
    else if load <= target *. Cells.Cell.input_cap cells.(i) then cells.(i)
    else search (i + 1)
  in
  search 0

let apply ?(config = default_config) ~lib circuit =
  let reverse_topo = List.rev (Netlist.Circuit.topological circuit) in
  let changed_total = ref 0 in
  let rec pass n =
    if n < config.max_passes then begin
      let changed = ref 0 in
      List.iter
        (fun id ->
          match Netlist.Circuit.cell circuit id with
          | None -> ()
          | Some current ->
              let load = Netlist.Circuit.load circuit id in
              let best =
                pick_cell lib ~fn:(Cells.Cell.fn current) ~load
                  ~target:config.fanout_target
              in
              if not (Cells.Cell.equal best current) then begin
                Netlist.Circuit.set_cell circuit id best;
                incr changed
              end)
        reverse_topo;
      changed_total := !changed_total + !changed;
      if !changed > 0 then pass (n + 1)
    end
  in
  pass 0;
  !changed_total

(* Area recovery — the constrained-mode pass the paper's §2.1 describes:
   after delay/variance optimization, gates off the critical region are
   downsized as far as possible without letting the circuit objective
   degrade past a budget.

   Gates are visited in descending area order; each is stepped down one
   drive at a time while a FASSTA full pass (cheap) keeps the objective
   within budget, with a FULLSSTA confirmation at the end. *)

type config = {
  objective : Objective.t;
  model : Variation.Model.t;
  tolerance : float; (* allowed relative objective increase, e.g. 0.01 *)
  samples : int;
  electrical : Sta.Electrical.config;
}

let default_config =
  {
    objective = Objective.create ~alpha:3.0;
    model = Variation.Model.default;
    tolerance = 0.003;
    samples = 12;
    electrical = Sta.Electrical.default_config;
  }

type result = {
  downsized : int;
  area_before : float;
  area_after : float;
  cost_before : float;
  cost_after : float;
}

(* Same exact-Clark global metric the sizer optimizes, so recovery's budget
   is measured in the currency the sizing gains were bought in. *)
let fast_cost config circuit =
  let electrical = Sta.Electrical.compute ~config:config.electrical circuit in
  let scratch =
    Array.make (Netlist.Circuit.size circuit)
      (Numerics.Clark.moments ~mean:0.0 ~var:0.0)
  in
  Ssta.Fassta.propagate_into ~exact:true ~model:config.model ~circuit ~electrical
    scratch;
  Objective.cost_of_rv ~exact:true config.objective
    (fun o -> scratch.(o))
    (Netlist.Circuit.outputs circuit)

let full_cost config circuit =
  let full =
    Ssta.Fullssta.run
      ~config:
        {
          Ssta.Fullssta.samples = config.samples;
          model = config.model;
          electrical = config.electrical;
        }
      circuit
  in
  Objective.circuit_cost config.objective full

let recover ?(config = default_config) ~lib circuit =
  let area_before = Netlist.Circuit.total_area circuit in
  let cost_before = full_cost config circuit in
  (* Budget anchored on the *fast* engine so accept/reject is consistent
     with the per-gate checks. *)
  let fast_budget =
    let c = fast_cost config circuit in
    c +. (config.tolerance *. Float.abs c)
  in
  let by_area_desc =
    Netlist.Circuit.gates circuit
    |> List.map (fun id -> (id, Cells.Cell.area (Netlist.Circuit.cell_exn circuit id)))
    |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
    |> List.map fst
  in
  let downsized = ref 0 in
  List.iter
    (fun gate ->
      let rec step () =
        let current = Netlist.Circuit.cell_exn circuit gate in
        match Cells.Library.next_down lib current with
        | None -> ()
        | Some smaller ->
            Netlist.Circuit.set_cell circuit gate smaller;
            if fast_cost config circuit <= fast_budget then begin
              incr downsized;
              step ()
            end
            else Netlist.Circuit.set_cell circuit gate current
      in
      step ())
    by_area_desc;
  {
    downsized = !downsized;
    area_before;
    area_after = Netlist.Circuit.total_area circuit;
    cost_before;
    cost_after = full_cost config circuit;
  }

let pp_result ppf r =
  Fmt.pf ppf "area recovery: %d downsizes, area %.1f -> %.1f, cost %.2f -> %.2f"
    r.downsized r.area_before r.area_after r.cost_before r.cost_after

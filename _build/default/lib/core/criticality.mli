(** Statistical gate criticality: P(node on the critical path), computed by
    distributing tightness probabilities backwards from RV_O. *)

type t

val compute :
  ?model:Variation.Model.t ->
  ?config:Sta.Electrical.config ->
  Netlist.Circuit.t ->
  t

val criticality : t -> Netlist.Circuit.id -> float

val ranking : t -> Netlist.Circuit.t -> (Netlist.Circuit.id * float) list
(** Gates, most critical first. *)

val pp : ?top:int -> Netlist.Circuit.t -> t Fmt.t

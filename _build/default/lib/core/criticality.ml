(* Statistical gate criticality: the probability that a node lies on the
   circuit's critical path (the concept the paper contrasts itself with in
   [5], Hashimoto & Onodera — criticality alone ranks gates but "does not
   address the variance of the timing path delays"; here it complements the
   WNSS machinery as a reporting/ranking tool).

   Computed by distributing probability backwards from RV_O: a node's
   criticality is the sum over its readers of the reader's criticality times
   the probability that the arc through this node wins the reader's max
   (its "tightness"). Tightness of arc i among arrivals A_1..A_k is
   approximated pairwise: P(A_i > max of the others), with the max of the
   others collapsed to moments by the exact Clark chain. *)

type t = {
  criticality : float array; (* P(node on the critical path), per node *)
}

let arrival_of_arc ~model circuit electrical arrivals id k =
  let fi = (Netlist.Circuit.fanins circuit id).(k) in
  Numerics.Clark.sum arrivals.(fi)
    (Ssta.Fassta.arc_moments model circuit electrical id k)

(* P(A > B) for independent normals. *)
let win_probability (a : Numerics.Clark.moments) (b : Numerics.Clark.moments) =
  let spread = Numerics.Clark.spread a b in
  if spread <= 0.0 then if a.Numerics.Clark.mean >= b.Numerics.Clark.mean then 1.0 else 0.0
  else Numerics.Normal.cdf ((a.Numerics.Clark.mean -. b.Numerics.Clark.mean) /. spread)

(* Tightness of each competitor in a list: P(it is the max), normalized. *)
let tightness_shares = function
  | [] -> [||]
  | [ _ ] -> [| 1.0 |]
  | arrivals ->
      let arr = Array.of_list arrivals in
      let n = Array.length arr in
      let raw =
        Array.mapi
          (fun i a ->
            let others =
              Array.to_list arr |> List.filteri (fun j _ -> j <> i)
            in
            win_probability a (Numerics.Clark.max_exact_list others))
          arr
      in
      let total = Array.fold_left ( +. ) 0.0 raw in
      if total <= 0.0 then Array.make n (1.0 /. float_of_int n)
      else Array.map (fun w -> w /. total) raw

let compute ?(model = Variation.Model.default)
    ?(config = Sta.Electrical.default_config) circuit =
  let electrical = Sta.Electrical.compute ~config circuit in
  let n = Netlist.Circuit.size circuit in
  let arrivals =
    Array.make n
      (Numerics.Clark.moments ~mean:config.Sta.Electrical.input_arrival ~var:0.0)
  in
  (* forward: exact-Clark arrival moments *)
  Ssta.Fassta.propagate_into ~exact:true ~model ~circuit ~electrical arrivals;
  let criticality = Array.make n 0.0 in
  (* seed: the virtual RV_O max across outputs *)
  let outputs = Netlist.Circuit.outputs circuit in
  let output_shares =
    tightness_shares (List.map (fun o -> arrivals.(o)) outputs)
  in
  List.iteri (fun i o -> criticality.(o) <- output_shares.(i)) outputs;
  (* backward: distribute through each gate's max *)
  List.iter
    (fun id ->
      if criticality.(id) > 0.0 then begin
        let fanins = Netlist.Circuit.fanins circuit id in
        if Array.length fanins > 0 then begin
          let arc_arrivals =
            List.init (Array.length fanins) (fun k ->
                arrival_of_arc ~model circuit electrical arrivals id k)
          in
          let shares = tightness_shares arc_arrivals in
          Array.iteri
            (fun k fi ->
              criticality.(fi) <- criticality.(fi) +. (criticality.(id) *. shares.(k)))
            fanins
        end
      end)
    (List.rev (Netlist.Circuit.topological circuit));
  { criticality }

let criticality t id = t.criticality.(id)

(* Gates ranked by criticality, most critical first. *)
let ranking t circuit =
  Netlist.Circuit.gates circuit
  |> List.map (fun id -> (id, t.criticality.(id)))
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let pp ?(top = 10) circuit ppf t =
  Fmt.pf ppf "gate criticality (top %d):@." top;
  List.iteri
    (fun i (id, c) ->
      if i < top then
        Fmt.pf ppf "  %-14s %.3f@." (Netlist.Circuit.node_name circuit id) c)
    (ranking t circuit)

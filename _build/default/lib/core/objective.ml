(* The optimization objective — equation (7):

     Cost(O_i) = μ_i + α·σ_i

   evaluated per output and maximized across outputs. α is the paper's
   user-specified weight ranking variance reduction against mean delay:
   α = 0 recovers a pure mean-delay optimizer (the "Original" baseline),
   Table 1 reports α = 3 and α = 9, Fig. 4 sweeps α. *)

type t = { alpha : float }

let create ~alpha =
  if alpha < 0.0 then invalid_arg "Objective.create: negative alpha";
  { alpha }

let mean_delay = { alpha = 0.0 }

(* Yield-targeted objective: minimizing μ + z_p·σ minimizes the p-quantile
   of the delay distribution, i.e. the clock period at which a fraction p of
   dies meets timing. for_yield ~percentile:0.99 ≈ alpha 2.33. *)
let for_yield ~percentile =
  if not (percentile > 0.5 && percentile < 1.0) then
    invalid_arg "Objective.for_yield: percentile must be in (0.5, 1)";
  { alpha = Numerics.Normal.quantile percentile }

let alpha t = t.alpha

let cost_of_moments t (m : Numerics.Clark.moments) =
  m.Numerics.Clark.mean +. (t.alpha *. Numerics.Clark.sigma m)

(* Max of the per-output costs over a set of outputs. *)
let cost_of_outputs t moments_of outputs =
  match outputs with
  | [] -> invalid_arg "Objective.cost_of_outputs: no outputs"
  | os ->
      List.fold_left
        (fun acc o -> Float.max acc (cost_of_moments t (moments_of o)))
        Float.neg_infinity os

(* Cost of RV_O from per-output moments via the fast Clark max — the
   statistical max over all outputs (paper §2.1). Unlike the max of
   per-output costs, this blended form is sensitive to every near-critical
   output, which matters for circuits with many symmetric outputs. *)
let cost_of_rv ?(exact = false) t moments_of outputs =
  match outputs with
  | [] -> invalid_arg "Objective.cost_of_rv: no outputs"
  | os ->
      let max_list =
        if exact then Numerics.Clark.max_exact_list
        else Numerics.Clark.max_fast_list
      in
      cost_of_moments t (max_list (List.map moments_of os))

(* Circuit-level objective from a FULLSSTA annotation: cost of RV_O, the
   statistical max over all outputs (the quantity StatisticalGreedy's outer
   loop monitors for convergence). *)
let circuit_cost t full = cost_of_moments t (Ssta.Fullssta.output_moments full)

let pp ppf t = Fmt.pf ppf "cost = mu + %g*sigma" t.alpha

(* Subcircuit evaluation — paper §4.5.

   For a candidate gate and a trial size, the cost of the resize is judged
   inside a window of two levels of transitive fanin/fanout: the trial cell
   is installed, the window's electrical state (loads, slews, arc delays) is
   re-derived in place, FASSTA propagates arrival moments from the frozen
   FULLSSTA boundary values, and the cost is the worst Cost(O_i) = μ + α·σ
   over the window's observed outputs. Everything is restored afterwards,
   so trials are free of global side effects. *)

(* How a trial is scored:
   [Windowed] — FASSTA on the window only, boundary moments frozen from
   FULLSSTA, outputs scored with the statistical-slack correction. This is
   the paper's §4.5 scheme.
   [Global] — the trial still only re-derives the window's electrical state
   (slew perturbations die out within a couple of levels), but scoring
   re-propagates arrival moments incrementally from the window to every
   affected node downstream (changes below a decay tolerance stop the
   wavefront) and prices the real RV_O — window myopia removed at roughly
   O(affected region) per trial. *)
type mode = Windowed | Global

type t = {
  circuit : Netlist.Circuit.t;
  model : Variation.Model.t;
  objective : Objective.t;
  mode : mode;
  electrical : Sta.Electrical.t; (* shared, mutated and restored per trial *)
  boundary : Netlist.Circuit.id -> Numerics.Clark.moments;
  down_mean : float array; (* remaining mean delay to any primary output *)
  down_var : float array; (* delay variance along that downstream path *)
  base : Numerics.Clark.moments array; (* arrivals for the committed sizes *)
  mutable base_cost : float; (* RV_O cost of [base] *)
  override : (int, Numerics.Clark.moments) Hashtbl.t; (* trial deltas *)
  area_weight : float; (* ps of cost per unit of added area *)
  wavefront : wavefront; (* scratch queue for incremental trials *)
  stats : Ssta.Fassta.stats;
}

(* Mutable min-heap of node ids with a dedup bitmap: the change wavefront
   must be processed in ascending id (= topological) order, and this runs
   thousands of times per sizing iteration. *)
and wavefront = {
  mutable heap : int array;
  mutable heap_len : int;
  queued : bool array; (* sized to the circuit *)
}

(* Wavefront decay tolerance: a node whose recomputed moments move by less
   than this (in ps, on mean and sigma) does not wake its fanouts. *)
let epsilon_wave = 1e-3

(* Statistical required-time estimate: for every node, the mean delay D of
   the longest remaining path to a primary output, and the variance V
   accumulated along that same path. A window output o is then scored as the
   cost of the full worst path through it,

     score(o) = Cost( N(μ_o + D(o), σ_o² + V(o)) ) = μ_o + D(o) + α·√(σ_o²+V(o))

   which makes window-local deltas commensurate with the global objective:
   slowing a shallow carry bit with hundreds of ps of chain left weighs as
   much as slowing a gate that feeds a primary output directly, and variance
   improvements are discounted by the variance the rest of the path will add
   anyway. Without this slack correction the max across window outputs hides
   collateral damage entirely. *)
let downstream_stats ~model circuit electrical =
  let n = Netlist.Circuit.size circuit in
  let down_mean = Array.make n 0.0 in
  let down_var = Array.make n 0.0 in
  List.iter
    (fun id ->
      let fanins = Netlist.Circuit.fanins circuit id in
      Array.iteri
        (fun k fi ->
          let arc = Ssta.Fassta.arc_moments model circuit electrical id k in
          let cand_mean = arc.Numerics.Clark.mean +. down_mean.(id) in
          if cand_mean > down_mean.(fi) then begin
            down_mean.(fi) <- cand_mean;
            down_var.(fi) <- arc.Numerics.Clark.var +. down_var.(id)
          end)
        fanins)
    (List.rev (Netlist.Circuit.topological circuit));
  (down_mean, down_var)

let wavefront_create n =
  { heap = Array.make 64 0; heap_len = 0; queued = Array.make n false }

let wavefront_push w id =
  if not w.queued.(id) then begin
    w.queued.(id) <- true;
    if w.heap_len = Array.length w.heap then begin
      let grown = Array.make (2 * w.heap_len) 0 in
      Array.blit w.heap 0 grown 0 w.heap_len;
      w.heap <- grown
    end;
    w.heap.(w.heap_len) <- id;
    w.heap_len <- w.heap_len + 1;
    let i = ref (w.heap_len - 1) in
    while !i > 0 && w.heap.((!i - 1) / 2) > w.heap.(!i) do
      let p = (!i - 1) / 2 in
      let tmp = w.heap.(p) in
      w.heap.(p) <- w.heap.(!i);
      w.heap.(!i) <- tmp;
      i := p
    done
  end

let wavefront_pop w =
  if w.heap_len = 0 then -1
  else begin
    let top = w.heap.(0) in
    w.heap_len <- w.heap_len - 1;
    w.heap.(0) <- w.heap.(w.heap_len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < w.heap_len && w.heap.(l) < w.heap.(!smallest) then smallest := l;
      if r < w.heap_len && w.heap.(r) < w.heap.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = w.heap.(!i) in
        w.heap.(!i) <- w.heap.(!smallest);
        w.heap.(!smallest) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    w.queued.(top) <- false;
    top
  end

let rv_cost t moments_of =
  Objective.cost_of_rv ~exact:true t.objective moments_of
    (Netlist.Circuit.outputs t.circuit)

(* Re-derive the committed-state arrival moments and their RV_O cost. *)
let refresh_base t =
  Ssta.Fassta.propagate_into ~exact:true ~model:t.model ~circuit:t.circuit
    ~electrical:t.electrical t.base;
  t.base_cost <- rv_cost t (fun o -> t.base.(o))

let create ?(mode = Global) ?(area_weight = 0.0) ~circuit ~model ~objective
    ~full () =
  let electrical = Ssta.Fullssta.electrical full in
  let down_mean, down_var = downstream_stats ~model circuit electrical in
  let t =
    {
      circuit;
      model;
      objective;
      mode;
      electrical;
      boundary = Ssta.Fullssta.moments full;
      down_mean;
      down_var;
      base =
        Array.make (Netlist.Circuit.size circuit)
          (Numerics.Clark.moments ~mean:0.0 ~var:0.0);
      base_cost = 0.0;
      override = Hashtbl.create 997;
      area_weight;
      wavefront = wavefront_create (Netlist.Circuit.size circuit);
      stats = Ssta.Fassta.make_stats ();
    }
  in
  refresh_base t;
  t

let score t o (m : Numerics.Clark.moments) =
  Objective.cost_of_moments t.objective
    (Numerics.Clark.moments
       ~mean:(m.Numerics.Clark.mean +. t.down_mean.(o))
       ~var:(m.Numerics.Clark.var +. t.down_var.(o)))

let windowed_cost t (sub : Netlist.Cone.subcircuit) =
  let table =
    Ssta.Fassta.propagate ~stats:t.stats ~model:t.model ~circuit:t.circuit
      ~electrical:t.electrical ~boundary:t.boundary sub.Netlist.Cone.members
  in
  let moments_of id =
    match Hashtbl.find_opt table id with Some m -> m | None -> t.boundary id
  in
  List.fold_left
    (fun acc o -> Float.max acc (score t o (moments_of o)))
    Float.neg_infinity sub.Netlist.Cone.window_outputs

(* Global scoring uses exact-erf Clark moments: the paper's quadratic erf is
   a 2-level-window device whose near-tie slope error compounds over whole
   circuits (it overstated RV_O's sigma 2.4x on the c499-class parity
   trees).

   Incremental trial propagation: recompute the window members from the
   cached base arrivals, then let the change wavefront run downstream,
   stopping wherever the recomputed moments move by less than
   [epsilon_wave]. Touched values live in [override]; [base] is never
   mutated by a trial. *)
let moments_at t id =
  match Hashtbl.find_opt t.override id with Some m -> m | None -> t.base.(id)

let recompute_node t id =
  let fanins = Netlist.Circuit.fanins t.circuit id in
  if Array.length fanins = 0 then t.base.(id)
  else begin
    let arcs = Sta.Electrical.arc_delays t.electrical id in
    let strength = Cells.Cell.strength (Netlist.Circuit.cell_exn t.circuit id) in
    let acc = ref None in
    Array.iteri
      (fun k fi ->
        let arc =
          Variation.Model.delay_moments t.model ~delay:arcs.(k) ~strength
        in
        let arrival = Numerics.Clark.sum (moments_at t fi) arc in
        acc :=
          Some
            (match !acc with
            | None -> arrival
            | Some best -> Numerics.Clark.max_exact best arrival))
      fanins;
    match !acc with Some m -> m | None -> assert false
  end

let trial_cost t (sub : Netlist.Cone.subcircuit) =
  Hashtbl.reset t.override;
  let w = t.wavefront in
  Array.iter (fun id -> wavefront_push w id) sub.Netlist.Cone.members;
  let rec drain () =
    let id = wavefront_pop w in
    if id >= 0 then begin
      let fresh = recompute_node t id in
      let old = t.base.(id) in
      let moved =
        Float.abs (fresh.Numerics.Clark.mean -. old.Numerics.Clark.mean)
        +. Float.abs (Numerics.Clark.sigma fresh -. Numerics.Clark.sigma old)
        > epsilon_wave
      in
      if moved then begin
        Hashtbl.replace t.override id fresh;
        Netlist.Circuit.iter_fanouts t.circuit id ~f:(fun fo ->
            wavefront_push w fo)
      end
      else Hashtbl.remove t.override id;
      drain ()
    end
  in
  drain ();
  rv_cost t (moments_at t)

(* Cost of the window as currently sized (no trial cell). *)
let cost t (sub : Netlist.Cone.subcircuit) =
  match t.mode with Windowed -> windowed_cost t sub | Global -> t.base_cost

(* A heavier pivot burdens its fanin drivers; the logical-effort rule sizes
   them up (never down) so the compound move crosses the coordination
   barrier a single-gate move cannot: upsizing is only profitable when the
   drivers strengthen with the load. *)
let fanin_adjustments t ~lib pivot =
  Array.to_list (Netlist.Circuit.fanins t.circuit pivot)
  |> List.filter_map (fun fi ->
         match Netlist.Circuit.cell t.circuit fi with
         | None -> None (* primary input *)
         | Some fanin_cell ->
             let load = Netlist.Circuit.load t.circuit fi in
             let rule =
               Initial_sizing.pick_cell lib ~fn:(Cells.Cell.fn fanin_cell) ~load
                 ~target:4.0
             in
             if Cells.Cell.strength rule > Cells.Cell.strength fanin_cell then
               Some (fi, rule)
             else None)

(* Evaluate one trial cell for the window's pivot (plus its induced fanin
   co-sizing): install, recompute the window electrically, score, restore.
   Returns the cost and the fanin adjustments the trial would commit. *)
let cost_with_cell ?(co_size = true) ~lib t (sub : Netlist.Cone.subcircuit) trial
    =
  let pivot = sub.Netlist.Cone.pivot in
  let original = Netlist.Circuit.cell_exn t.circuit pivot in
  let members = sub.Netlist.Cone.members in
  let snap = Sta.Electrical.snapshot t.electrical members in
  Netlist.Circuit.set_cell t.circuit pivot trial;
  let adjustments = if co_size then fanin_adjustments t ~lib pivot else [] in
  let saved =
    List.map
      (fun (fi, _) -> (fi, Netlist.Circuit.cell_exn t.circuit fi))
      adjustments
  in
  List.iter
    (fun (fi, cell) -> Netlist.Circuit.set_cell t.circuit fi cell)
    adjustments;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (fi, cell) -> Netlist.Circuit.set_cell t.circuit fi cell)
        saved;
      Netlist.Circuit.set_cell t.circuit pivot original;
      Sta.Electrical.restore t.electrical snap)
    (fun () ->
      Sta.Electrical.recompute_nodes t.electrical t.circuit members;
      let c =
        match t.mode with
        | Windowed -> windowed_cost t sub
        | Global -> trial_cost t sub
      in
      (* area-aware variant: price the area this move adds (baseline mean
         optimization uses it to stop at diminishing returns) *)
      let area_delta =
        if t.area_weight = 0.0 then 0.0
        else
          Cells.Cell.area trial -. Cells.Cell.area original
          +. List.fold_left
               (fun acc ((fi, cell), (_, old_cell)) ->
                 ignore fi;
                 acc +. Cells.Cell.area cell -. Cells.Cell.area old_cell)
               0.0
               (List.combine adjustments saved)
      in
      (c +. (t.area_weight *. area_delta), adjustments))

type verdict = {
  best : Cells.Cell.t;
  co_resizes : (Netlist.Circuit.id * Cells.Cell.t) list;
  best_cost : float;
  current_cost : float;
}

(* The inner loop of Fig. 2: try every available size for the pivot, return
   the best cell, its induced fanin co-sizing, and its cost (ties keep the
   incumbent). *)
let best_size ?co_size t ~lib (sub : Netlist.Cone.subcircuit) =
  let pivot = sub.Netlist.Cone.pivot in
  let current = Netlist.Circuit.cell_exn t.circuit pivot in
  let candidates = Cells.Library.sizes_of_fn lib (Cells.Cell.fn current) in
  let current_cost = cost t sub in
  let best =
    ref { best = current; co_resizes = []; best_cost = current_cost; current_cost }
  in
  Array.iter
    (fun cell ->
      if not (Cells.Cell.equal cell current) then begin
        let c, adjustments = cost_with_cell ?co_size ~lib t sub cell in
        if c < !best.best_cost then
          best :=
            { !best with best = cell; co_resizes = adjustments; best_cost = c }
      end)
    candidates;
  !best

(* Make a committed resize visible to subsequent window evaluations. A full
   electrical refresh is one cheap LUT sweep and guarantees later trials in
   the same sweep never score against stale loads or slews; the cached base
   arrivals are re-derived with it. *)
let commit t (_sub : Netlist.Cone.subcircuit) =
  Sta.Electrical.recompute_all t.electrical t.circuit;
  refresh_base t

let fassta_stats t = t.stats

(** Load-driven initial sizing (an effective-fanout rule), emulating the
    drive assignment a synthesis tool ships — the paper's starting point.
    Returns the number of resizes applied. *)

type config = { fanout_target : float; max_passes : int }

val default_config : config
(** Electrical fanout target 4 (logical-effort gain rule), up to 6 settling
    passes. *)

val pick_cell :
  Cells.Library.t -> fn:Cells.Fn.t -> load:float -> target:float -> Cells.Cell.t
(** Smallest drive of [fn] whose electrical fanout [load/input_cap] stays at
    or under [target] (largest drive if none qualifies). *)

val apply : ?config:config -> lib:Cells.Library.t -> Netlist.Circuit.t -> int

(** The optimization objective (paper eq. (7)): Cost = μ + α·σ, maximized
    over outputs. *)

type t

val create : alpha:float -> t
(** Raises on negative α. *)

val mean_delay : t
(** α = 0 — the "Original" mean-delay baseline. *)

val for_yield : percentile:float -> t
(** α = z_p: minimizes the p-quantile of delay (the period at which a
    fraction p of dies meets timing). Requires 0.5 < p < 1. *)

val alpha : t -> float

val cost_of_moments : t -> Numerics.Clark.moments -> float

val cost_of_outputs :
  t -> (Netlist.Circuit.id -> Numerics.Clark.moments) -> Netlist.Circuit.id list ->
  float
(** Max per-output cost; raises on an empty output list. *)

val cost_of_rv :
  ?exact:bool ->
  t ->
  (Netlist.Circuit.id -> Numerics.Clark.moments) ->
  Netlist.Circuit.id list ->
  float
(** Cost of the blended RV_O (fast Clark max over the outputs) — sensitive
    to every near-critical output, unlike the max of per-output costs. *)

val circuit_cost : t -> Ssta.Fullssta.t -> float
(** Cost of RV_O from a FULLSSTA annotation. *)

val pp : t Fmt.t

(** Yield-driven sizing: escalate α until the circuit meets a period with
    the requested parametric yield (the paper's §2.2 yield application). *)

type config = {
  sizer : Sizer.config;
  alphas : float list;
  recover_area : bool;
}

val default_config : config
(** Ladder α ∈ {1, 3, 6, 9, 15}, area recovery on. *)

type step = { alpha : float; yield_ : float; sigma : float; area : float }

type result = {
  target : float;
  period : float;
  achieved : float;
  met : bool;
  steps : step list;
}

val optimize :
  ?config:config ->
  lib:Cells.Library.t ->
  Netlist.Circuit.t ->
  period:float ->
  target:float ->
  result
(** Mutates the circuit in place; stops at the first ladder step meeting
    [target]. Raises unless 0 < target < 1. *)

val pp : result Fmt.t

(* Yield-driven sizing: escalate the variance weight until the circuit meets
   a clock period with the requested parametric yield — the "increase the
   overall yield of a design" application the paper's §2.2 leads with
   (optimization 1 in Fig. 1 yields more functional units at period T).

   Escalation rather than bisection: each optimization run is expensive and
   yield is monotone in α in practice, so the ladder stops at the first α
   that meets the target (or reports the best it could do). *)

type config = {
  sizer : Sizer.config; (* objective is overridden per ladder step *)
  alphas : float list; (* escalation ladder, ascending *)
  recover_area : bool;
}

let default_config =
  {
    sizer = Sizer.default_config;
    alphas = [ 1.0; 3.0; 6.0; 9.0; 15.0 ];
    recover_area = true;
  }

type step = { alpha : float; yield_ : float; sigma : float; area : float }

type result = {
  target : float;
  period : float;
  achieved : float; (* final yield *)
  met : bool;
  steps : step list; (* chronological, last one is the final state *)
}

let measure config circuit ~period =
  let full =
    Ssta.Fullssta.run
      ~config:
        {
          Ssta.Fullssta.samples = config.sizer.Sizer.samples;
          model = config.sizer.Sizer.model;
          electrical = config.sizer.Sizer.electrical;
        }
      circuit
  in
  let m = Ssta.Fullssta.output_moments full in
  ( Ssta.Fullssta.yield_at full ~period,
    Numerics.Clark.sigma m,
    Netlist.Circuit.total_area circuit )

let optimize ?(config = default_config) ~lib circuit ~period ~target =
  if not (target > 0.0 && target < 1.0) then
    invalid_arg "Yield_driven.optimize: target must be in (0, 1)";
  let yield0, sigma0, area0 = measure config circuit ~period in
  let steps = ref [ { alpha = 0.0; yield_ = yield0; sigma = sigma0; area = area0 } ] in
  let rec ladder = function
    | [] -> ()
    | alpha :: rest ->
        let current = (List.hd !steps).yield_ in
        if current < target then begin
          let objective = Objective.create ~alpha in
          let _ =
            Sizer.optimize ~config:{ config.sizer with Sizer.objective } ~lib
              circuit
          in
          if config.recover_area then begin
            let rcfg = { Area_recovery.default_config with objective } in
            ignore (Area_recovery.recover ~config:rcfg ~lib circuit)
          end;
          let yield_, sigma, area = measure config circuit ~period in
          steps := { alpha; yield_; sigma; area } :: !steps;
          ladder rest
        end
  in
  ladder config.alphas;
  let final = List.hd !steps in
  {
    target;
    period;
    achieved = final.yield_;
    met = final.yield_ >= target;
    steps = List.rev !steps;
  }

let pp ppf r =
  Fmt.pf ppf "yield-driven sizing to %.1f%% at T=%.1f ps: %s (%.1f%%)@."
    (100.0 *. r.target) r.period
    (if r.met then "met" else "NOT met")
    (100.0 *. r.achieved);
  List.iter
    (fun s ->
      Fmt.pf ppf "  alpha=%-4g yield=%5.1f%% sigma=%7.2f area=%8.1f@." s.alpha
        (100.0 *. s.yield_) s.sigma s.area)
    r.steps

(* Benchmark harness: regenerates every table and figure of the paper, then
   runs Bechamel micro-benchmarks of the engines involved in each one.

     dune exec bench/main.exe               -- full reproduction (Table 1 over
                                               the whole suite; takes minutes)
     dune exec bench/main.exe -- --quick    -- small-circuit subset
     dune exec bench/main.exe -- table1|fig1|fig3|fig4|approx|ablation|micro

   Absolute numbers are not expected to match the paper (our substrate is a
   generated library and profile-matched circuits, not the authors' 90nm
   flow); EXPERIMENTS.md tracks paper-vs-measured shape for every artifact. *)

let lib = Lazy.force Cells.Library.default

let quick = Array.exists (fun a -> a = "--quick") Sys.argv

let wants section =
  let explicit =
    Array.to_list Sys.argv |> List.tl
    |> List.filter (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--"))
  in
  match explicit with [] -> true | names -> List.mem section names

let heading title = Fmt.pr "@.=== %s ===@." title

(* ---- Table 1 ------------------------------------------------------------- *)

let quick_names = [ "alu1"; "alu2"; "alu3"; "c432"; "c499"; "c880" ]

let run_table1 () =
  heading "Table 1 — sigma/mean reduction across the benchmark suite";
  let names = if quick then quick_names else Benchgen.Iscas_like.names in
  let rows = Experiments.Table1.run ~names ~lib () in
  Fmt.pr "%a" Experiments.Table1.pp rows;
  let shape = Experiments.Table1.shape rows in
  Fmt.pr
    "shape: sigma reduced everywhere=%b, alpha-monotone fraction=%.2f, mean \
     within 10%%=%b, area increases=%b@."
    shape.Experiments.Table1.all_sigma_reduced
    shape.Experiments.Table1.monotone_alpha_fraction
    shape.Experiments.Table1.mean_within_10_pct
    shape.Experiments.Table1.area_increases

(* ---- figures ------------------------------------------------------------- *)

let run_fig1 () =
  heading "Fig. 1 — output delay pdf at three optimization points";
  let r = Experiments.Fig1.run ~lib () in
  Fmt.pr "%a" Experiments.Fig1.pp r;
  Fmt.pr "  pdf series (delay_ps probability_mass):@.";
  List.iter
    (fun (label, points) ->
      Fmt.pr "  # %s@." label;
      List.iter (fun (x, p) -> Fmt.pr "  %.2f %.5f@." x p) points)
    (Experiments.Fig1.to_series r)

let run_fig3 () =
  heading "Fig. 3 — WNSS tracing on the paper's 6-gate example";
  Fmt.pr "%a" Experiments.Fig3.pp (Experiments.Fig3.trace ())

let run_fig4 () =
  heading "Fig. 4 — normalized mean/sigma trade-off for c432";
  Fmt.pr "%a" Experiments.Fig4.pp (Experiments.Fig4.run ~lib ())

let run_approx () =
  heading "Sec. 4.3 — approximation study";
  Fmt.pr "%a" Experiments.Approx.pp_erf (Experiments.Approx.erf_study ());
  Fmt.pr "%a" Experiments.Approx.pp_max
    (Experiments.Approx.max_study ~cases:(if quick then 150 else 500) ());
  Fmt.pr "%a" Experiments.Approx.pp_cutoffs
    (Experiments.Approx.cutoff_study ~lib ())

let run_ablation () =
  heading "ablation — sizer design choices (c432, alpha=9)";
  Fmt.pr "%a" Experiments.Ablation.pp (Experiments.Ablation.run ~lib ())

(* ---- Bechamel micro-benchmarks -------------------------------------------- *)

let micro_tests () =
  let open Bechamel in
  let alu = Benchgen.Alu.generate ~lib ~bits:8 () in
  let _ = Core.Initial_sizing.apply ~lib alu in
  let c432 = Benchgen.Iscas_like.build_exn ~lib "c432" in
  let _ = Core.Initial_sizing.apply ~lib c432 in
  let electrical = Sta.Electrical.compute c432 in
  let scratch =
    Array.make (Netlist.Circuit.size c432)
      (Numerics.Clark.moments ~mean:0.0 ~var:0.0)
  in
  let a = Numerics.Clark.moments ~mean:100.0 ~var:81.0 in
  let b = Numerics.Clark.moments ~mean:104.0 ~var:144.0 in
  let pa = Numerics.Discrete_pdf.of_normal ~samples:12 ~mean:100.0 ~sigma:9.0 () in
  let pb = Numerics.Discrete_pdf.of_normal ~samples:12 ~mean:104.0 ~sigma:12.0 () in
  [
    (* Table 1's engines: the nested-analysis speed gap FASSTA exists for *)
    Test.make ~name:"fassta_c432_pass"
      (Staged.stage (fun () ->
           Ssta.Fassta.propagate_into ~model:Variation.Model.default
             ~circuit:c432 ~electrical scratch));
    Test.make ~name:"fullssta_c432_pass"
      (Staged.stage (fun () -> ignore (Ssta.Fullssta.run c432)));
    Test.make ~name:"deterministic_sta_c432"
      (Staged.stage (fun () -> ignore (Sta.Analysis.analyze c432)));
    Test.make ~name:"monte_carlo_100_trials_alu8"
      (Staged.stage (fun () ->
           ignore
             (Ssta.Monte_carlo.run
                ~config:{ Ssta.Monte_carlo.default_config with trials = 100 }
                alu)));
    (* Sec. 4.3's max operator: quadratic-cutoff Clark vs exact vs discrete *)
    Test.make ~name:"clark_max_fast"
      (Staged.stage (fun () -> ignore (Numerics.Clark.max_fast a b)));
    Test.make ~name:"clark_max_exact"
      (Staged.stage (fun () -> ignore (Numerics.Clark.max_exact a b)));
    Test.make ~name:"discrete_pdf_max"
      (Staged.stage (fun () -> ignore (Numerics.Discrete_pdf.max2 pa pb)));
    Test.make ~name:"discrete_pdf_sum_resample"
      (Staged.stage (fun () ->
           ignore
             (Numerics.Discrete_pdf.resample
                (Numerics.Discrete_pdf.sum pa pb)
                ~samples:12)));
    (* Fig. 3's primitive: one WNSS trace (including its FULLSSTA pass) *)
    Test.make ~name:"wnss_trace_c432"
      (Staged.stage (fun () ->
           let full = Ssta.Fullssta.run c432 in
           ignore (Core.Wnss.trace ~model:Variation.Model.default c432 full)));
    (* the sizer's preflight gate: full lint (circuit+library+model) cost *)
    Test.make ~name:"lint_check_all_c432"
      (Staged.stage (fun () -> ignore (Lint.Engine.check_all ~lib c432)));
    Test.make ~name:"bench_io_lint_c432"
      (Staged.stage (fun () ->
           ignore (Netlist.Bench_io.lint (Netlist.Bench_io.to_string c432))));
  ]

let run_micro () =
  heading "Bechamel micro-benchmarks (engines behind each artifact)";
  let open Bechamel in
  let open Bechamel.Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.6) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let grouped =
    Test.make_grouped ~name:"statsize" ~fmt:"%s/%s" (micro_tests ())
  in
  let raw = Benchmark.all cfg instances grouped in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun _metric tbl ->
      let rows =
        Hashtbl.fold (fun name result acc -> (name, result) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      List.iter
        (fun (name, result) ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Fmt.pr "  %-32s %14.1f ns/run@." name est
          | _ -> Fmt.pr "  %-32s (no estimate)@." name)
        rows)
    merged

let () =
  Fmt.pr "statsize paper-reproduction bench%s@."
    (if quick then " (--quick)" else "");
  if wants "table1" then run_table1 ();
  if wants "fig1" then run_fig1 ();
  if wants "fig3" then run_fig3 ();
  if wants "fig4" then run_fig4 ();
  if wants "approx" then run_approx ();
  if wants "ablation" then run_ablation ();
  if wants "micro" then run_micro ();
  Fmt.pr "@.done.@."

(* Benchmark harness: regenerates every table and figure of the paper, then
   runs Bechamel micro-benchmarks of the engines involved in each one.

     dune exec bench/main.exe               -- full reproduction (Table 1 over
                                               the whole suite; takes minutes)
     dune exec bench/main.exe -- --quick    -- small-circuit subset
     dune exec bench/main.exe -- table1|fig1|fig3|fig4|approx|ablation|micro|incremental|kernels|serve|counters|statrace|statflow

   --json additionally emits machine-readable BENCH_micro.json /
   BENCH_incremental.json (hand-rolled encoder; no JSON dependency);
   --smoke is the tiny-quota --quick variant behind the @bench-smoke alias.

   Absolute numbers are not expected to match the paper (our substrate is a
   generated library and profile-matched circuits, not the authors' 90nm
   flow); EXPERIMENTS.md tracks paper-vs-measured shape for every artifact. *)

let lib = Lazy.force Cells.Library.default

(* --smoke: tiny-quota variant of --quick for the @bench-smoke alias — just
   enough work to prove the harness and the JSON emitters still function. *)
let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv
let quick = smoke || Array.exists (fun a -> a = "--quick") Sys.argv
let json = Array.exists (fun a -> a = "--json") Sys.argv

let wants section =
  let explicit =
    Array.to_list Sys.argv |> List.tl
    |> List.filter (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--"))
  in
  match explicit with [] -> true | names -> List.mem section names

let heading title = Fmt.pr "@.=== %s ===@." title

(* ---- hand-rolled JSON (the toolchain ships no JSON package) -------------- *)

type jsonv =
  | Jnum of float
  | Jint of int
  | Jstr of string
  | Jbool of bool
  | Jlist of jsonv list
  | Jobj of (string * jsonv) list

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec emit_json b ~indent v =
  let pad n = String.make n ' ' in
  match v with
  | Jint i -> Buffer.add_string b (string_of_int i)
  | Jnum f ->
      (* JSON has no NaN/inf literals; encode those as null *)
      if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.17g" f)
      else Buffer.add_string b "null"
  | Jstr s -> Buffer.add_string b ("\"" ^ json_escape s ^ "\"")
  | Jbool v -> Buffer.add_string b (if v then "true" else "false")
  | Jlist [] -> Buffer.add_string b "[]"
  | Jlist items ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b (pad (indent + 2));
          emit_json b ~indent:(indent + 2) item)
        items;
      Buffer.add_string b ("\n" ^ pad indent ^ "]")
  | Jobj [] -> Buffer.add_string b "{}"
  | Jobj fields ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b (pad (indent + 2) ^ "\"" ^ json_escape k ^ "\": ");
          emit_json b ~indent:(indent + 2) item)
        fields;
      Buffer.add_string b ("\n" ^ pad indent ^ "}")

(* BENCH_PREFIX lets two bench invocations coexist in one build directory:
   the smoke run and the full-mode gate both emit BENCH_serve.json, and
   dune runs their rules concurrently under @ci. *)
let write_json path v =
  let path =
    match Sys.getenv_opt "BENCH_PREFIX" with
    | Some p -> p ^ path
    | None -> path
  in
  let b = Buffer.create 4096 in
  emit_json b ~indent:0 v;
  Buffer.add_char b '\n';
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  Fmt.pr "  wrote %s@." path

(* ---- Table 1 ------------------------------------------------------------- *)

let quick_names = [ "alu1"; "alu2"; "alu3"; "c432"; "c499"; "c880" ]

let run_table1 () =
  heading "Table 1 — sigma/mean reduction across the benchmark suite";
  let names = if quick then quick_names else Benchgen.Iscas_like.names in
  let rows = Experiments.Table1.run ~names ~lib () in
  Fmt.pr "%a" Experiments.Table1.pp rows;
  let shape = Experiments.Table1.shape rows in
  Fmt.pr
    "shape: sigma reduced everywhere=%b, alpha-monotone fraction=%.2f, mean \
     within 10%%=%b, area increases=%b@."
    shape.Experiments.Table1.all_sigma_reduced
    shape.Experiments.Table1.monotone_alpha_fraction
    shape.Experiments.Table1.mean_within_10_pct
    shape.Experiments.Table1.area_increases

(* ---- figures ------------------------------------------------------------- *)

let run_fig1 () =
  heading "Fig. 1 — output delay pdf at three optimization points";
  let r = Experiments.Fig1.run ~lib () in
  Fmt.pr "%a" Experiments.Fig1.pp r;
  Fmt.pr "  pdf series (delay_ps probability_mass):@.";
  List.iter
    (fun (label, points) ->
      Fmt.pr "  # %s@." label;
      List.iter (fun (x, p) -> Fmt.pr "  %.2f %.5f@." x p) points)
    (Experiments.Fig1.to_series r)

let run_fig3 () =
  heading "Fig. 3 — WNSS tracing on the paper's 6-gate example";
  Fmt.pr "%a" Experiments.Fig3.pp (Experiments.Fig3.trace ())

let run_fig4 () =
  heading "Fig. 4 — normalized mean/sigma trade-off for c432";
  Fmt.pr "%a" Experiments.Fig4.pp (Experiments.Fig4.run ~lib ())

let run_approx () =
  heading "Sec. 4.3 — approximation study";
  Fmt.pr "%a" Experiments.Approx.pp_erf (Experiments.Approx.erf_study ());
  Fmt.pr "%a" Experiments.Approx.pp_max
    (Experiments.Approx.max_study ~cases:(if quick then 150 else 500) ());
  Fmt.pr "%a" Experiments.Approx.pp_cutoffs
    (Experiments.Approx.cutoff_study ~lib ())

let run_ablation () =
  heading "ablation — sizer design choices (c432, alpha=9)";
  Fmt.pr "%a" Experiments.Ablation.pp (Experiments.Ablation.run ~lib ())

(* ---- Bechamel micro-benchmarks -------------------------------------------- *)

let micro_tests () =
  let open Bechamel in
  let alu = Benchgen.Alu.generate ~lib ~bits:8 () in
  let _ = Core.Initial_sizing.apply ~lib alu in
  let c432 = Benchgen.Iscas_like.build_exn ~lib "c432" in
  let _ = Core.Initial_sizing.apply ~lib c432 in
  let electrical = Sta.Electrical.compute c432 in
  let scratch =
    Array.make (Netlist.Circuit.size c432)
      (Numerics.Clark.moments ~mean:0.0 ~var:0.0)
  in
  let a = Numerics.Clark.moments ~mean:100.0 ~var:81.0 in
  let b = Numerics.Clark.moments ~mean:104.0 ~var:144.0 in
  let pa = Numerics.Discrete_pdf.of_normal ~samples:12 ~mean:100.0 ~sigma:9.0 () in
  let pb = Numerics.Discrete_pdf.of_normal ~samples:12 ~mean:104.0 ~sigma:12.0 () in
  let pa48 = Numerics.Discrete_pdf.of_normal ~samples:48 ~mean:100.0 ~sigma:9.0 () in
  let pb48 = Numerics.Discrete_pdf.of_normal ~samples:48 ~mean:104.0 ~sigma:12.0 () in
  [
    (* Table 1's engines: the nested-analysis speed gap FASSTA exists for *)
    Test.make ~name:"fassta_c432_pass"
      (Staged.stage (fun () ->
           Ssta.Fassta.propagate_into ~model:Variation.Model.default
             ~circuit:c432 ~electrical scratch));
    Test.make ~name:"fullssta_c432_pass"
      (Staged.stage (fun () -> ignore (Ssta.Fullssta.run c432)));
    Test.make ~name:"deterministic_sta_c432"
      (Staged.stage (fun () -> ignore (Sta.Analysis.analyze c432)));
    Test.make ~name:"monte_carlo_100_trials_alu8"
      (Staged.stage (fun () ->
           ignore
             (Ssta.Monte_carlo.run
                ~config:{ Ssta.Monte_carlo.default_config with trials = 100 }
                alu)));
    (* Sec. 4.3's max operator: quadratic-cutoff Clark vs exact vs discrete *)
    Test.make ~name:"clark_max_fast"
      (Staged.stage (fun () -> ignore (Numerics.Clark.max_fast a b)));
    Test.make ~name:"clark_max_exact"
      (Staged.stage (fun () -> ignore (Numerics.Clark.max_exact a b)));
    Test.make ~name:"discrete_pdf_max"
      (Staged.stage (fun () -> ignore (Numerics.Discrete_pdf.max2 pa pb)));
    (* 4x the support points: the merge-scan max must scale ~linearly; the
       ns ratio of this pair is the max2 regression line in BENCH_micro.json
       (the old cross-product kernel was quadratic and would show ~16x) *)
    Test.make ~name:"discrete_pdf_max_48pt"
      (Staged.stage (fun () -> ignore (Numerics.Discrete_pdf.max2 pa48 pb48)));
    Test.make ~name:"discrete_pdf_sum_resample"
      (Staged.stage (fun () ->
           ignore
             (Numerics.Discrete_pdf.resample
                (Numerics.Discrete_pdf.sum pa pb)
                ~samples:12)));
    (* Fig. 3's primitive: one WNSS trace (including its FULLSSTA pass) *)
    Test.make ~name:"wnss_trace_c432"
      (Staged.stage (fun () ->
           let full = Ssta.Fullssta.run c432 in
           ignore (Core.Wnss.trace ~model:Variation.Model.default c432 full)));
    (* the sizer's preflight gate: full lint (circuit+library+model) cost *)
    Test.make ~name:"lint_check_all_c432"
      (Staged.stage (fun () -> ignore (Lint.Engine.check_all ~lib c432)));
    Test.make ~name:"bench_io_lint_c432"
      (Staged.stage (fun () ->
           ignore (Netlist.Bench_io.lint (Netlist.Bench_io.to_string c432))));
  ]

let run_micro () =
  heading "Bechamel micro-benchmarks (engines behind each artifact)";
  let open Bechamel in
  let open Bechamel.Toolkit in
  let quota_s = if smoke then 0.05 else 0.6 in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second quota_s) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let grouped =
    Test.make_grouped ~name:"statsize" ~fmt:"%s/%s" (micro_tests ())
  in
  let raw = Benchmark.all cfg instances grouped in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let merged = Analyze.merge ols instances results in
  let estimates = ref [] in
  Hashtbl.iter
    (fun _metric tbl ->
      let rows =
        Hashtbl.fold (fun name result acc -> (name, result) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      List.iter
        (fun (name, result) ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              estimates := (name, est) :: !estimates;
              Fmt.pr "  %-32s %14.1f ns/run@." name est
          | _ -> Fmt.pr "  %-32s (no estimate)@." name)
        rows)
    merged;
  (* the max2 regression line: the merge-scan kernel must stay ~linear in
     support points, so 4x the points should cost ~4x, not the ~16x a
     quadratic cross-product shows. Mid-range threshold 8x. *)
  let find name = List.assoc_opt ("statsize/" ^ name) !estimates in
  let max2_ratio =
    match (find "discrete_pdf_max", find "discrete_pdf_max_48pt") with
    | Some base, Some big when base > 0.0 -> Some (big /. base)
    | _ -> None
  in
  (match max2_ratio with
  | Some r ->
      Fmt.pr "  max2 48pt/12pt cost ratio: %.1fx (linear kernel: ~4, \
              quadratic: ~16)@." r
  | None -> ());
  if json then
    write_json "BENCH_micro.json"
      (Jobj
         [
           ("section", Jstr "micro");
           ("quota_s", Jnum quota_s);
           ("smoke", Jbool smoke);
           ( "results",
             Jlist
               (List.rev_map
                  (fun (name, est) ->
                    Jobj [ ("name", Jstr name); ("ns_per_run", Jnum est) ])
                  !estimates) );
           ( "regressions",
             Jobj
               [
                 ( "max2_48pt_over_12pt_ratio",
                   match max2_ratio with Some r -> Jnum r | None -> Jnum Float.nan
                 );
                 ( "max2_scaling_linear",
                   Jbool
                     (match max2_ratio with Some r -> r < 8.0 | None -> false) );
               ] );
         ])

(* ---- incremental engines: scratch vs dirty-cone sizer ---------------------- *)

(* Same circuit, same config except [incremental]; the two runs must agree
   bit-for-bit on the final sizing (the incremental stops are exact), so the
   wall-clock gap is pure engine overhead. *)
let run_incremental () =
  heading "incremental — scratch vs dirty-cone sizer wall-clock";
  let cases =
    if smoke then [ ("alu2", `Iscas "alu2") ]
    else
      List.map (fun n -> (n, `Iscas n)) quick_names @ [ ("alu8", `Alu 8) ]
  in
  let build = function
    | `Iscas name -> Benchgen.Iscas_like.build_exn ~lib name
    | `Alu bits -> Benchgen.Alu.generate ~lib ~bits ()
  in
  let max_iterations =
    if smoke then 2 else Core.Sizer.default_config.Core.Sizer.max_iterations
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let rows =
    List.map
      (fun (name, spec) ->
        let run ~incremental =
          let c = build spec in
          let _ = Core.Initial_sizing.apply ~lib c in
          let config =
            { Core.Sizer.default_config with incremental; max_iterations }
          in
          let r, t = time (fun () -> Core.Sizer.optimize ~config ~lib c) in
          let cells =
            List.map
              (fun g -> Cells.Cell.name (Netlist.Circuit.cell_exn c g))
              (Netlist.Circuit.gates c)
          in
          (r, t, cells)
        in
        let _, t_scratch, cells_scratch = run ~incremental:false in
        let r_incr, t_incr, cells_incr = run ~incremental:true in
        let identical = cells_scratch = cells_incr in
        let speedup = if t_incr > 0.0 then t_scratch /. t_incr else Float.nan in
        Fmt.pr
          "  %-6s scratch %7.2fs  incremental %7.2fs  speedup %5.2fx  \
           final sizing identical=%b (%d resizes, %d iterations)@."
          name t_scratch t_incr speedup identical
          r_incr.Core.Sizer.total_resizes
          (List.length r_incr.Core.Sizer.iterations);
        (name, t_scratch, t_incr, speedup, identical, r_incr))
      cases
  in
  (* the headline: one aggregate over the quick Table 1 subset (alu8 rides
     along for the satellite's ALU datapoint but is not a Table 1 circuit) *)
  let in_quick (name, _, _, _, _, _) = List.mem name quick_names in
  let total_s =
    List.fold_left (fun a (_, t, _, _, _, _) -> a +. t) 0.0
      (List.filter in_quick rows)
  and total_i =
    List.fold_left (fun a (_, _, t, _, _, _) -> a +. t) 0.0
      (List.filter in_quick rows)
  in
  let aggregate = if total_i > 0.0 then total_s /. total_i else Float.nan in
  if not smoke then
    Fmt.pr "  quick-subset aggregate: scratch %.2fs incremental %.2fs speedup \
            %.2fx@."
      total_s total_i aggregate;
  if json then
    write_json "BENCH_incremental.json"
      (Jobj
         [
           ("section", Jstr "incremental");
           ("smoke", Jbool smoke);
           ("max_iterations", Jint max_iterations);
           ( "quick_subset_aggregate",
             Jobj
               [
                 ("scratch_s", Jnum total_s);
                 ("incremental_s", Jnum total_i);
                 ("speedup", Jnum aggregate);
               ] );
           ( "circuits",
             Jlist
               (List.map
                  (fun (name, t_s, t_i, speedup, identical, r) ->
                    Jobj
                      [
                        ("name", Jstr name);
                        ("scratch_s", Jnum t_s);
                        ("incremental_s", Jnum t_i);
                        ("speedup", Jnum speedup);
                        ("final_sizing_identical", Jbool identical);
                        ("total_resizes", Jint r.Core.Sizer.total_resizes);
                        ( "iterations",
                          Jint (List.length r.Core.Sizer.iterations) );
                        ( "final_sigma_over_mean",
                          Jnum
                            (Core.Sizer.sigma_over_mean
                               r.Core.Sizer.final_moments) );
                      ])
                  rows) );
         ])

(* ---- statkern: fused LUT/erf kernels vs the scalar reference engine ------ *)

(* Same sizer, same circuits, [fused_kernels] toggled — the scalar lane is
   the PR-3 incremental engine, the fused lane adds the statkern kernels
   (flattened query2 LUTs + memo, batched Clark folds). The fused engine is
   bit-transparent, so the two runs must agree bit-for-bit on the final
   sizing and the wall-clock gap is pure arithmetic-floor removal. A third
   lane exercises the opt-in ε-tolerance regime on the fused engine and
   reports how its verdicts resolved (certified / tolerated / fallback)
   plus whether its sizing drifted from exact (allowed, but bounded by the
   certified regret trace — on these circuits it stays identical). *)
let run_kernels () =
  heading "kernels — scalar reference vs fused statkern engine";
  let cases = if smoke then [ "alu2" ] else quick_names in
  let max_iterations =
    if smoke then 2 else Core.Sizer.default_config.Core.Sizer.max_iterations
  in
  (* Per-decision certified regret budget (ps) for the tolerance lane. 2 ps
     also sets the certified wavefront-decay threshold (tolerance/16), so
     the fast drain's op-count reduction is exercised and counted even when
     the certification ladder ends in fallback. *)
  let tolerance = 2.0 in
  Obs.Sink.reset ();
  Obs.Sink.enable ();
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let counter name =
    match List.assoc_opt name (Obs.Counters.dump ()) with
    | Some v -> v
    | None -> 0
  in
  let lut_queries () =
    counter "lut.delay_queries" + counter "lut.slew_queries"
    + counter "lut.fused_queries"
  in
  let rows =
    List.map
      (fun name ->
        let run ~fused ~tolerance =
          let c = Benchgen.Iscas_like.build_exn ~lib name in
          let _ = Core.Initial_sizing.apply ~lib c in
          let config =
            {
              Core.Sizer.default_config with
              Core.Sizer.fused_kernels = fused;
              tolerance;
              max_iterations;
            }
          in
          let q0 = lut_queries () in
          let r, t = time (fun () -> Core.Sizer.optimize ~config ~lib c) in
          let cells =
            List.map
              (fun g -> Cells.Cell.name (Netlist.Circuit.cell_exn c g))
              (Netlist.Circuit.gates c)
          in
          (r, t, cells, lut_queries () - q0)
        in
        let _, t_scalar, cells_scalar, q_scalar =
          run ~fused:false ~tolerance:0.0
        in
        let memo_h0 = counter "cells.memo.hits" in
        let _, t_fused, cells_fused, q_fused = run ~fused:true ~tolerance:0.0 in
        let memo_hits = counter "cells.memo.hits" - memo_h0 in
        let tol_c0 = counter "window.tolerance.certified"
        and tol_t0 = counter "window.tolerance.tolerated"
        and tol_f0 = counter "window.tolerance.fallback" in
        let _, t_tol, cells_tol, _ = run ~fused:true ~tolerance in
        let tol_certified = counter "window.tolerance.certified" - tol_c0
        and tol_tolerated = counter "window.tolerance.tolerated" - tol_t0
        and tol_fallback = counter "window.tolerance.fallback" - tol_f0 in
        let identical = cells_scalar = cells_fused in
        let tol_identical = cells_scalar = cells_tol in
        let speedup =
          if t_fused > 0.0 then t_scalar /. t_fused else Float.nan
        in
        Fmt.pr
          "  %-6s scalar %7.2fs  fused %7.2fs  speedup %5.2fx  identical=%b  \
           lut queries %d -> %d  memo hits %d@."
          name t_scalar t_fused speedup identical q_scalar q_fused memo_hits;
        Fmt.pr
          "         tolerance=%.2f: %7.2fs  identical=%b  certified %d  \
           tolerated %d  fallback %d@."
          tolerance t_tol tol_identical tol_certified tol_tolerated
          tol_fallback;
        ( name,
          t_scalar,
          t_fused,
          speedup,
          identical,
          (q_scalar, q_fused, memo_hits),
          (t_tol, tol_identical, tol_certified, tol_tolerated, tol_fallback) ))
      cases
  in
  Obs.Sink.disable ();
  let total_s = List.fold_left (fun a (_, t, _, _, _, _, _) -> a +. t) 0.0 rows
  and total_f =
    List.fold_left (fun a (_, _, t, _, _, _, _) -> a +. t) 0.0 rows
  in
  let aggregate = if total_f > 0.0 then total_s /. total_f else Float.nan in
  if not smoke then
    Fmt.pr "  quick-subset aggregate: scalar %.2fs fused %.2fs speedup %.2fx@."
      total_s total_f aggregate;
  if json then
    write_json "BENCH_kernels.json"
      (Jobj
         [
           ("section", Jstr "kernels");
           ("smoke", Jbool smoke);
           ("max_iterations", Jint max_iterations);
           ( "quick_subset_aggregate",
             Jobj
               [
                 ("scalar_s", Jnum total_s);
                 ("fused_s", Jnum total_f);
                 ("speedup", Jnum aggregate);
               ] );
           ( "circuits",
             Jlist
               (List.map
                  (fun ( name,
                         t_s,
                         t_f,
                         speedup,
                         identical,
                         (q_s, q_f, memo_hits),
                         (t_tol, tol_id, tol_c, tol_t, tol_fb) ) ->
                    Jobj
                      [
                        ("name", Jstr name);
                        ("scalar_s", Jnum t_s);
                        ("fused_s", Jnum t_f);
                        ("speedup", Jnum speedup);
                        ("final_sizing_identical", Jbool identical);
                        ("scalar_lut_queries", Jint q_s);
                        ("fused_lut_queries", Jint q_f);
                        ("memo_hits", Jint memo_hits);
                        ( "tolerance",
                          Jobj
                            [
                              ("tolerance_ps", Jnum tolerance);
                              ("tolerance_s", Jnum t_tol);
                              ("final_sizing_identical", Jbool tol_id);
                              ("certified", Jint tol_c);
                              ("tolerated", Jint tol_t);
                              ("fallback", Jint tol_fb);
                            ] );
                      ])
                  rows) );
         ])

(* ---- statserve: daemon determinism, caches, pool throughput -------------- *)

(* The work-conservation counter set: operation counters the domain-parallel
   window engine must keep EXACTLY equal for every --domains value (the
   chunked evaluate/commit rounds are domain-count independent by
   construction). Counters that track physical workers — replica resyncs
   (window.commit.visits), replica construction (the fullssta family),
   per-engine memo/LUT caches, per-lane distribution (parwin.windows.laneN)
   — are deliberately excluded; see DESIGN.md §15. *)
let conservation_counters =
  [
    "sizer.iterations";
    "sizer.windows.evaluated";
    "sizer.windows.skipped";
    "sizer.moves.committed";
    "window.trial.visits";
    "window.trial.cell_evals";
    "parwin.rounds";
    "parwin.windows.evaluated";
    "parwin.windows.discarded";
  ]

let run_serve () =
  heading "serve — resident daemon: determinism, caches, pool throughput";
  let circuits = if smoke then [ "alu2" ] else [ "alu1"; "alu2" ] in
  let max_iterations = if smoke then 2 else 4 in
  let counter name =
    match List.assoc_opt name (Obs.Counters.dump ()) with
    | Some v -> v
    | None -> 0
  in
  let snapshot () = List.map (fun n -> (n, counter n)) conservation_counters in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* 1 vs 4 window domains on the same circuits: sizings must be
     byte-identical and the conservation counters exactly equal *)
  Obs.Sink.reset ();
  Obs.Sink.enable ();
  let run_one ~domains name =
    let c = Benchgen.Iscas_like.build_exn ~lib name in
    let _ = Core.Initial_sizing.apply ~lib c in
    let config =
      {
        Core.Sizer.default_config with
        window_domains = domains;
        max_iterations;
      }
    in
    let before = snapshot () in
    let _, t = time (fun () -> Core.Sizer.optimize ~config ~lib c) in
    let after = snapshot () in
    let delta =
      List.map2 (fun (k, a) (_, b) -> (k, b - a)) before after
    in
    (Serve.Jobs.sizing_digest c, delta, t)
  in
  let sum_counters acc delta =
    match acc with
    | [] -> delta
    | _ -> List.map2 (fun (k, a) (_, b) -> (k, a + b)) acc delta
  in
  let identical, c1, c4, t1, t4 =
    List.fold_left
      (fun (ok, c1, c4, t1, t4) name ->
        let d1, delta1, s1 = run_one ~domains:1 name in
        let d4, delta4, s4 = run_one ~domains:4 name in
        let same = String.equal d1 d4 in
        Fmt.pr "  %-6s domains 1 %6.2fs  domains 4 %6.2fs  identical=%b@."
          name s1 s4 same;
        ( ok && same,
          sum_counters c1 delta1,
          sum_counters c4 delta4,
          t1 +. s1,
          t4 +. s4 ))
      (true, [], [], 0.0, 0.0) circuits
  in
  Obs.Sink.disable ();
  Obs.Sink.reset ();
  let conserved = c1 = c4 in
  Fmt.pr "  work conservation (1 vs 4 domains): equal=%b@." conserved;
  List.iter2
    (fun (k, a) (_, b) ->
      Fmt.pr "    %-28s %10d %10d%s@." k a b (if a = b then "" else "  <-- DIVERGED"))
    c1 c4;
  (* in-process daemon: warm-vs-cold cache ratio and multi-job throughput *)
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "statserve-bench-%d.sock" (Unix.getpid ()))
  in
  let daemon =
    Domain.spawn (fun () ->
        Serve.Daemon.run
          { (Serve.Daemon.default_config ~socket) with domains = 2 })
  in
  let rec wait_socket tries =
    if Sys.file_exists socket then ()
    else if tries = 0 then failwith "bench serve: daemon socket never appeared"
    else begin
      Unix.sleepf 0.05;
      wait_socket (tries - 1)
    end
  in
  wait_socket 100;
  (* cold = first info on a .bench payload (parse + cache fill); warm = the
     same request again (content-hash hit). The circuit is the suite's
     largest so parse cost dominates the socket round-trip, and warm is the
     minimum over the repeats — scheduling noise only ever inflates a
     sample, so min-of-warm vs the strictly-heavier cold keeps the gated
     ratio > 1 without depending on the machine. *)
  let bench_text =
    Netlist.Bench_io.to_string (Benchgen.Iscas_like.build_exn ~lib "c7552")
  in
  let info_line =
    Serve.Protocol.to_line
      (Obs.Json.Obj
         [
           ("serve", Obs.Json.Num 1.0);
           ("id", Obs.Json.Str "cache");
           ("op", Obs.Json.Str "info");
           ("bench", Obs.Json.Str bench_text);
         ])
  in
  let warm_reps = if smoke then 5 else 20 in
  let cold_s, warm_s =
    Serve.Client.with_connection ~socket (fun c ->
        let _, cold_s = time (fun () -> Serve.Client.request c info_line) in
        let warm =
          List.init warm_reps (fun _ ->
              snd (time (fun () -> Serve.Client.request c info_line)))
        in
        (cold_s, List.fold_left Float.min Float.infinity warm))
  in
  let warm_cold_ratio = if warm_s > 0.0 then cold_s /. warm_s else Float.nan in
  Fmt.pr "  cache: cold %.4fs  warm %.6fs  ratio %.1fx@." cold_s warm_s
    warm_cold_ratio;
  (* throughput: one batch of optimize jobs through the daemon pool *)
  let jobs = if smoke then 2 else 8 in
  let batch_line =
    Printf.sprintf {|{"serve":1,"id":"tp","op":"batch","jobs":[%s]}|}
      (String.concat ","
         (List.init jobs (fun i ->
              Printf.sprintf
                {|{"id":%d,"op":"optimize","circuit":"alu2","max_iterations":%d}|}
                i max_iterations)))
  in
  let _, batch_s =
    Serve.Client.with_connection ~socket (fun c ->
        time (fun () -> Serve.Client.request c batch_line))
  in
  let jobs_per_s = if batch_s > 0.0 then float_of_int jobs /. batch_s else 0.0 in
  Fmt.pr "  throughput: %d optimize jobs in %.2fs (%.2f jobs/s)@." jobs batch_s
    jobs_per_s;
  (match
     Serve.Client.session ~socket [ {|{"serve":1,"id":0,"op":"shutdown"}|} ]
   with
  | [ _ ] -> ()
  | _ -> failwith "bench serve: shutdown not acknowledged");
  Domain.join daemon;
  if json then
    write_json "BENCH_serve.json"
      (Jobj
         [
           ("section", Jstr "serve");
           ("smoke", Jbool smoke);
           ("max_iterations", Jint max_iterations);
           ("circuits", Jlist (List.map (fun n -> Jstr n) circuits));
           (* flattened d1./d4. view: the exact-match member the CI counter
              gate diffs against baselines/serve.json *)
           ( "counters",
             Jobj
               (List.map (fun (k, v) -> ("d1." ^ k, Jint v)) c1
               @ List.map (fun (k, v) -> ("d4." ^ k, Jint v)) c4) );
           ( "work_conservation",
             Jobj
               [
                 ("domains1", Jobj (List.map (fun (k, v) -> (k, Jint v)) c1));
                 ("domains4", Jobj (List.map (fun (k, v) -> (k, Jint v)) c4));
                 ("equal", Jbool conserved);
                 ("sizings_identical", Jbool identical);
                 ("domains1_s", Jnum t1);
                 ("domains4_s", Jnum t4);
               ] );
           ( "warm_cold",
             Jobj
               [
                 ("cold_s", Jnum cold_s);
                 ("warm_s", Jnum warm_s);
                 ("ratio", Jnum warm_cold_ratio);
                 ("warm_faster", Jbool (warm_cold_ratio > 1.0));
               ] );
           ( "throughput",
             Jobj
               [
                 ("jobs", Jint jobs);
                 ("wall_s", Jnum batch_s);
                 ("jobs_per_s", Jnum jobs_per_s);
               ] );
         ])

(* ---- statobs counters ---------------------------------------------------- *)

(* A FIXED workload regardless of --smoke/--quick: the emitted counter block
   is diffed bit-for-bit against bench/baselines/counters.json by the CI
   counter gate, so the work must be identical no matter which harness
   flags ride along. Wall-clock and span timings are emitted too but gated
   schema-only — they are machine-dependent; the operation counts are not. *)
let run_counters () =
  heading "statobs — deterministic operation counters (CI-gated)";
  Obs.Sink.reset ();
  Obs.Sink.enable ();
  let t0 = Unix.gettimeofday () in
  Obs.Span.with_ "bench.counters.analyze_c432" (fun () ->
      let c = Benchgen.Iscas_like.build_exn ~lib "c432" in
      let _ = Core.Initial_sizing.apply ~lib c in
      let full = Ssta.Fullssta.run c in
      ignore (Ssta.Fullssta.output_moments full);
      let stats = Ssta.Fassta.make_stats () in
      let moments = Ssta.Fassta.run ~stats c in
      ignore (Ssta.Fassta.output_moments c moments));
  Obs.Span.with_ "bench.counters.optimize_alu1" (fun () ->
      let c = Benchgen.Iscas_like.build_exn ~lib "alu1" in
      let _ = Core.Initial_sizing.apply ~lib c in
      let config = { Core.Sizer.default_config with max_iterations = 2 } in
      ignore (Core.Sizer.optimize ~config ~lib c));
  let wall_s = Unix.gettimeofday () -. t0 in
  Obs.Sink.disable ();
  let counters = Obs.Counters.dump () in
  List.iter (fun (name, v) -> Fmt.pr "  %-28s %12d@." name v) counters;
  Fmt.pr "  (%.2fs)@." wall_s;
  if json then
    write_json "BENCH_counters.json"
      (Jobj
         [
           ("section", Jstr "counters");
           ("schema", Jstr "statobs/1");
           ( "workload",
             Jlist [ Jstr "analyze c432 (fullssta+fassta)"; Jstr "optimize alu1 (2 iterations)" ] );
           ("counters", Jobj (List.map (fun (k, v) -> (k, Jint v)) counters));
           ( "timings",
             Jobj
               [
                 ("wall_s", Jnum wall_s);
                 ( "spans",
                   Jlist
                     (List.map
                        (fun (name, count, total_us, max_us) ->
                          Jobj
                            [
                              ("name", Jstr name);
                              ("count", Jint count);
                              ("total_us", Jnum total_us);
                              ("max_us", Jnum max_us);
                            ])
                        (Obs.Span.summaries ())) );
               ] );
         ]);
  Obs.Sink.reset ()

(* ---- statrace: parallel-safety analysis over the project's own sources --- *)

(* Not a paper artifact: tracks the cost and findings profile of the static
   race analyzer as the domain-parallel surface grows. The findings count on
   the shipped tree must be zero — the @races gate enforces that — so this
   section's JSON is a cost/coverage record, not a pass/fail signal. *)
let run_statrace () =
  heading "statrace — parallel-safety static analysis (lib/ + bin/)";
  (* cwd is bench/ inside _build under the @bench-smoke rule, the project
     root under `dune exec bench/main.exe` *)
  let roots =
    List.find_opt
      (List.for_all Sys.file_exists)
      [ [ "lib"; "bin" ]; [ "../lib"; "../bin" ] ]
    |> Option.value ~default:[]
  in
  if roots = [] then Fmt.pr "  sources not found; skipping@."
  else begin
    let t0 = Unix.gettimeofday () in
    let result = Statrace.Analyze.run_dirs roots in
    let wall_s = Unix.gettimeofday () -. t0 in
    let histogram =
      Statrace.Analyze.count_by_code result.Statrace.Analyze.findings
    in
    Fmt.pr "  %d files, %d entry points, %d findings, %d suppressed (%.3fs)@."
      result.Statrace.Analyze.files_scanned
      (List.length result.Statrace.Analyze.entry_points)
      (List.length result.Statrace.Analyze.findings)
      result.Statrace.Analyze.suppressed wall_s;
    List.iter
      (fun (name, file, line) -> Fmt.pr "  entry %s (%s:%d)@." name file line)
      result.Statrace.Analyze.entry_points;
    List.iter (fun (code, n) -> Fmt.pr "  %-8s %d@." code n) histogram;
    if json then
      write_json "BENCH_statrace.json"
        (Jobj
           [
             ("section", Jstr "statrace");
             ("schema", Jstr "statrace/1");
             ("roots", Jlist (List.map (fun r -> Jstr r) roots));
             ("files_scanned", Jint result.Statrace.Analyze.files_scanned);
             ( "entry_points",
               Jlist
                 (List.map
                    (fun (name, file, line) ->
                      Jobj
                        [
                          ("name", Jstr name);
                          ("file", Jstr file);
                          ("line", Jint line);
                        ])
                    result.Statrace.Analyze.entry_points) );
             ( "findings_by_code",
               Jobj (List.map (fun (c, n) -> (c, Jint n)) histogram) );
             ("findings", Jint (List.length result.Statrace.Analyze.findings));
             ("suppressed", Jint result.Statrace.Analyze.suppressed);
             ("wall_s", Jnum wall_s);
           ])
  end

(* ---- statflow: hot-path hygiene analysis over the project's own sources - *)

(* Companion to the statrace section: cost and findings profile of the
   allocation/exception/determinism analyzer. Runs with the same flow.allow
   the @flow gate uses, so `findings` here is the gated view (zero on a
   shipped tree modulo Info-level notes) and the per-entry allocation
   summaries are the static complement of the Gc.minor_words budget tests. *)
let run_statflow () =
  heading "statflow — allocation/exception/determinism analysis (lib/ + bin/)";
  let roots =
    List.find_opt
      (List.for_all Sys.file_exists)
      [ [ "lib"; "bin" ]; [ "../lib"; "../bin" ] ]
    |> Option.value ~default:[]
  in
  if roots = [] then Fmt.pr "  sources not found; skipping@."
  else begin
    let allow =
      match List.find_opt Sys.file_exists [ "flow.allow"; "../flow.allow" ] with
      | None -> []
      | Some p -> (
          match Statflow.Analyze.parse_allow_file p with
          | Ok entries -> entries
          | Error msg ->
              Fmt.pr "  allow-file ignored: %s@." msg;
              [])
    in
    let config = { Statflow.Analyze.default_config with allow } in
    let t0 = Unix.gettimeofday () in
    let result = Statflow.Analyze.run_dirs ~config roots in
    let wall_s = Unix.gettimeofday () -. t0 in
    let histogram =
      Statflow.Analyze.count_by_code result.Statflow.Analyze.findings
    in
    Fmt.pr
      "  %d files, %d hot + %d det entries, %d findings, %d suppressed \
       (%.3fs)@."
      result.Statflow.Analyze.files_scanned
      (List.length result.Statflow.Analyze.hot_entries)
      (List.length result.Statflow.Analyze.det_entries)
      (List.length result.Statflow.Analyze.findings)
      result.Statflow.Analyze.suppressed wall_s;
    List.iter
      (fun (name, c) ->
        Fmt.pr "  %s: %d bindings, %d allocs (%d in loops)@." name
          c.Statflow.Analyze.bindings
          (c.Statflow.Analyze.constructs + c.Statflow.Analyze.closures
         + c.Statflow.Analyze.builders)
          c.Statflow.Analyze.in_loop)
      result.Statflow.Analyze.summaries;
    List.iter (fun (code, n) -> Fmt.pr "  %-8s %d@." code n) histogram;
    if json then
      write_json "BENCH_statflow.json"
        (Jobj
           [
             ("section", Jstr "statflow");
             ("schema", Jstr "statflow/1");
             ("roots", Jlist (List.map (fun r -> Jstr r) roots));
             ("files_scanned", Jint result.Statflow.Analyze.files_scanned);
             ( "hot_entries",
               Jlist
                 (List.map
                    (fun (name, file, line) ->
                      Jobj
                        [
                          ("name", Jstr name);
                          ("file", Jstr file);
                          ("line", Jint line);
                        ])
                    result.Statflow.Analyze.hot_entries) );
             ( "det_entries",
               Jlist
                 (List.map
                    (fun (name, file, line) ->
                      Jobj
                        [
                          ("name", Jstr name);
                          ("file", Jstr file);
                          ("line", Jint line);
                        ])
                    result.Statflow.Analyze.det_entries) );
             ( "alloc_summaries",
               Jlist
                 (List.map
                    (fun (name, c) ->
                      Jobj
                        [
                          ("entry", Jstr name);
                          ("bindings", Jint c.Statflow.Analyze.bindings);
                          ("constructs", Jint c.Statflow.Analyze.constructs);
                          ("closures", Jint c.Statflow.Analyze.closures);
                          ("builders", Jint c.Statflow.Analyze.builders);
                          ("in_loop", Jint c.Statflow.Analyze.in_loop);
                        ])
                    result.Statflow.Analyze.summaries) );
             ( "findings_by_code",
               Jobj (List.map (fun (c, n) -> (c, Jint n)) histogram) );
             ("findings", Jint (List.length result.Statflow.Analyze.findings));
             ("suppressed", Jint result.Statflow.Analyze.suppressed);
             ("wall_s", Jnum wall_s);
           ])
  end

let () =
  Fmt.pr "statsize paper-reproduction bench%s@."
    (if quick then " (--quick)" else "");
  if wants "table1" then run_table1 ();
  if wants "fig1" then run_fig1 ();
  if wants "fig3" then run_fig3 ();
  if wants "fig4" then run_fig4 ();
  if wants "approx" then run_approx ();
  if wants "ablation" then run_ablation ();
  if wants "micro" then run_micro ();
  if wants "incremental" then run_incremental ();
  if wants "kernels" then run_kernels ();
  if wants "serve" then run_serve ();
  if wants "counters" then run_counters ();
  if wants "statrace" then run_statrace ();
  if wants "statflow" then run_statflow ();
  Fmt.pr "@.done.@."

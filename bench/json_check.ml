(* Validator + counter-regression gate for the bench JSON emitters (the
   toolchain carries no JSON package; parsing comes from Obs.Json).

   Plain mode — `json_check FILE...` — validates each file parses as JSON,
   guarding the hand-rolled emitters from rotting into almost-JSON.

   Gate mode — `json_check --gate CURRENT BASELINE` — diffs the statobs
   counter block of a fresh BENCH_counters.json against the committed
   baseline: counters must match EXACTLY in both directions (an operation-
   count change means an algorithmic change and must be acknowledged by
   refreshing the baseline), while the timings block is compared
   schema-only (wall-clock is machine noise; its shape is not).

   Conserve mode — `json_check --conserve BENCH_serve.json` — the
   baseline-free work-conservation check: within one serve bench run, the
   1-domain and 4-domain counter blocks must be exactly equal, the sizings
   byte-identical, and the warm cache path faster than cold. *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  body

let validate path =
  match Obs.Json.parse_result (read_file path) with
  | Ok _ ->
      Printf.printf "%s: valid JSON (%d bytes)\n" path
        (String.length (read_file path));
      true
  | Error (msg, at) ->
      Printf.eprintf "%s: INVALID JSON at byte %d: %s\n" path at msg;
      false
  | exception Sys_error e ->
      Printf.eprintf "%s: %s\n" path e;
      false

(* ---- gate mode ----------------------------------------------------------- *)

let refresh_recipe =
  "refresh: dune exec bench/main.exe -- counters --json && cp \
   BENCH_counters.json bench/baselines/counters.json"

let counters_of path json =
  match Obs.Json.member "counters" json with
  | Some (Obs.Json.Obj kvs) ->
      List.map
        (fun (k, v) ->
          match v with
          | Obs.Json.Num f -> (k, int_of_float f)
          | _ ->
              Printf.eprintf "%s: counter %s is not a number\n" path k;
              exit 1)
        kvs
  | _ ->
      Printf.eprintf "%s: no \"counters\" object\n" path;
      exit 1

(* Structural comparison for the advisory blocks: same kinds, same object
   keys, recursively; array elements lenient (lengths and values may move
   run-to-run — e.g. which spans fired — as long as each side is a list). *)
let rec same_shape (a : Obs.Json.t) (b : Obs.Json.t) =
  match (a, b) with
  | Obs.Json.Obj xs, Obs.Json.Obj ys ->
      let keys l = List.map fst l |> List.sort String.compare in
      keys xs = keys ys
      && List.for_all
           (fun (k, v) -> same_shape v (List.assoc k ys))
           xs
  | Obs.Json.Arr _, Obs.Json.Arr _ -> true
  | Obs.Json.Num _, Obs.Json.Num _ -> true
  | Obs.Json.Str _, Obs.Json.Str _ -> true
  | Obs.Json.Bool _, Obs.Json.Bool _ -> true
  | Obs.Json.Null, Obs.Json.Null -> true
  | _ -> false

let gate current_path baseline_path =
  let parse path =
    match Obs.Json.parse_result (read_file path) with
    | Ok v -> v
    | Error (msg, at) ->
        Printf.eprintf "%s: INVALID JSON at byte %d: %s\n" path at msg;
        exit 1
  in
  let current = parse current_path and baseline = parse baseline_path in
  let cur = counters_of current_path current
  and base = counters_of baseline_path baseline in
  let complaints = ref [] in
  let complain fmt = Printf.ksprintf (fun s -> complaints := s :: !complaints) fmt in
  List.iter
    (fun (k, bv) ->
      match List.assoc_opt k cur with
      | None -> complain "counter %s: in baseline (%d) but missing from current" k bv
      | Some cv when cv <> bv -> complain "counter %s: baseline %d, current %d" k bv cv
      | Some _ -> ())
    base;
  List.iter
    (fun (k, cv) ->
      if not (List.mem_assoc k base) then
        complain "counter %s: new in current (%d), absent from baseline" k cv)
    cur;
  (match (Obs.Json.member "timings" current, Obs.Json.member "timings" baseline) with
  | Some tc, Some tb ->
      if not (same_shape tc tb) then
        complain "timings block: schema diverged from baseline"
  | None, Some _ -> complain "timings block: missing from current"
  | Some _, None -> complain "timings block: missing from baseline"
  | None, None -> ());
  match List.rev !complaints with
  | [] ->
      Printf.printf "counter gate: %s matches %s (%d counters exact)\n"
        current_path baseline_path (List.length base)
  | cs ->
      Printf.eprintf "counter regression: %s diverged from %s\n" current_path
        baseline_path;
      List.iter (fun c -> Printf.eprintf "  %s\n" c) cs;
      Printf.eprintf
        "counters are deterministic per machine+toolchain; if the change is \
         intentional,\n%s\n"
        refresh_recipe;
      exit 1

(* ---- conserve mode -------------------------------------------------------- *)

(* `json_check --conserve BENCH_serve.json`: the in-file work-conservation
   check for the serve bench. Unlike --gate it needs no committed baseline —
   the invariant is machine-independent: the 1-domain and 4-domain counter
   blocks of the SAME run must be exactly equal (the parallel window engine
   does identical work at every domain count), the sizings byte-identical,
   and the warm cache path faster than the cold one. *)
let conserve path =
  let json =
    match Obs.Json.parse_result (read_file path) with
    | Ok v -> v
    | Error (msg, at) ->
        Printf.eprintf "%s: INVALID JSON at byte %d: %s\n" path at msg;
        exit 1
  in
  let wc =
    match Obs.Json.member "work_conservation" json with
    | Some v -> v
    | None ->
        Printf.eprintf "%s: no \"work_conservation\" object\n" path;
        exit 1
  in
  let block name =
    match Obs.Json.member name wc with
    | Some (Obs.Json.Obj kvs) ->
        List.map
          (fun (k, v) ->
            match v with
            | Obs.Json.Num f -> (k, int_of_float f)
            | _ ->
                Printf.eprintf "%s: %s.%s is not a number\n" path name k;
                exit 1)
          kvs
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    | _ ->
        Printf.eprintf "%s: no \"%s\" counter block\n" path name;
        exit 1
  in
  let d1 = block "domains1" and d4 = block "domains4" in
  let complaints = ref [] in
  let complain fmt = Printf.ksprintf (fun s -> complaints := s :: !complaints) fmt in
  if List.map fst d1 <> List.map fst d4 then
    complain "domains1/domains4 counter sets differ"
  else
    List.iter2
      (fun (k, v1) (_, v4) ->
        if v1 <> v4 then complain "counter %s: domains1 %d, domains4 %d" k v1 v4)
      d1 d4;
  let flag name =
    match Obs.Json.member name wc with
    | Some (Obs.Json.Bool b) -> b
    | _ ->
        complain "missing boolean %S" name;
        false
  in
  if not (flag "equal") then complain "work_conservation.equal is false";
  if not (flag "sizings_identical") then
    complain "sizings diverged across domain counts";
  (match
     Option.bind (Obs.Json.member "warm_cold" json) (Obs.Json.member "ratio")
   with
  | Some (Obs.Json.Num r) when r > 1.0 -> ()
  | Some (Obs.Json.Num r) -> complain "warm/cold ratio %.2f is not > 1" r
  | _ -> complain "missing warm_cold.ratio");
  match List.rev !complaints with
  | [] ->
      Printf.printf
        "conserve gate: %s — %d counters equal across domain counts, sizings \
         identical, warm cache faster\n"
        path (List.length d1)
  | cs ->
      Printf.eprintf "work-conservation violation in %s\n" path;
      List.iter (fun c -> Printf.eprintf "  %s\n" c) cs;
      exit 1

let () =
  match Array.to_list Sys.argv with
  | _ :: "--gate" :: [ current; baseline ] -> gate current baseline
  | _ :: "--gate" :: _ ->
      Printf.eprintf "usage: json_check --gate CURRENT BASELINE\n";
      exit 2
  | _ :: "--conserve" :: [ path ] -> conserve path
  | _ :: "--conserve" :: _ ->
      Printf.eprintf "usage: json_check --conserve FILE\n";
      exit 2
  | _ :: files ->
      if not (List.fold_left (fun ok f -> validate f && ok) true files) then
        exit 1
  | [] -> ()

(* Minimal JSON validator for the bench emitters (the toolchain carries no
   JSON package, and the emitters are hand-rolled — this guards them from
   rotting into almost-JSON). Strict on structure, lenient on nothing:
   RFC 8259 grammar minus \u surrogate-pair pairing checks. *)

exception Bad of string * int

let check (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word =
    String.iter expect word
  in
  let string_body () =
    expect '"';
    let fin = ref false in
    while not !fin do
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance (); fin := true
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some _ -> advance ()
    done
  in
  let digits () =
    match peek () with
    | Some ('0' .. '9') ->
        while match peek () with Some ('0' .. '9') -> true | _ -> false do
          advance ()
        done
    | _ -> fail "expected digit"
  in
  let number () =
    if peek () = Some '-' then advance ();
    (match peek () with
    | Some '0' -> advance ()
    | Some ('1' .. '9') -> digits ()
    | _ -> fail "bad number");
    if peek () = Some '.' then (advance (); digits ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else
          let members = ref true in
          while !members do
            skip_ws ();
            string_body ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some '}' -> advance (); members := false
            | _ -> fail "expected , or } in object"
          done
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else
          let items = ref true in
          while !items do
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some ']' -> advance (); items := false
            | _ -> fail "expected , or ] in array"
          done
    | Some '"' -> string_body ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "expected a JSON value");
    skip_ws ()
  in
  value ();
  if !pos <> n then fail "trailing garbage after document"

let () =
  let bad = ref false in
  Array.iteri
    (fun i path ->
      if i > 0 then
        match
          let ic = open_in_bin path in
          let len = in_channel_length ic in
          let body = really_input_string ic len in
          close_in ic;
          check body;
          len
        with
        | len -> Printf.printf "%s: valid JSON (%d bytes)\n" path len
        | exception Bad (msg, at) ->
            bad := true;
            Printf.eprintf "%s: INVALID JSON at byte %d: %s\n" path at msg
        | exception Sys_error e ->
            bad := true;
            Printf.eprintf "%s: %s\n" path e)
    Sys.argv;
  if !bad then exit 1
